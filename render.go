package quad

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/engine"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/progressive"
	"github.com/quadkdv/quad/internal/render"
	"github.com/quadkdv/quad/internal/stats"
)

// DensityMap is a rendered density raster: Values[y*Res.W+x] is the density
// of pixel (x, y), with pixel (0, 0) at the lower-left corner of the
// data-space window.
type DensityMap struct {
	Res    Resolution
	Values []float64
	// WindowMin/WindowMax are the data-space corners of the rendered
	// window.
	WindowMin, WindowMax [2]float64
}

// At returns the density value of pixel (x, y).
func (m *DensityMap) At(x, y int) float64 { return m.Values[y*m.Res.W+x] }

// MuSigma returns the mean and standard deviation of the map's density
// values — the statistics the paper's τ thresholds are expressed in.
func (m *DensityMap) MuSigma() (mu, sigma float64) { return stats.MuSigma(m.Values) }

// SavePNG renders the map through the heat-color ramp and writes a PNG.
// logScale applies a logarithmic color scale, which suits the heavy density
// skew of typical KDV data.
func (m *DensityMap) SavePNG(path string, logScale bool) error {
	v := &grid.Values{Res: m.Res.internal(), Data: m.Values}
	scale := render.Linear
	if logScale {
		scale = render.Log
	}
	return render.SavePNG(path, render.Heatmap(v, scale))
}

// HotspotMap is a rendered τKDV raster: Hot[y*Res.W+x] reports whether
// pixel (x, y) has density ≥ τ.
type HotspotMap struct {
	Res                  Resolution
	Tau                  float64
	Hot                  []bool
	WindowMin, WindowMax [2]float64
}

// At reports whether pixel (x, y) is hot.
func (m *HotspotMap) At(x, y int) bool { return m.Hot[y*m.Res.W+x] }

// HotFraction returns the fraction of hot pixels.
func (m *HotspotMap) HotFraction() float64 {
	var n int
	for _, h := range m.Hot {
		if h {
			n++
		}
	}
	return float64(n) / float64(len(m.Hot))
}

// SavePNG writes the two-color hotspot map as a PNG.
func (m *HotspotMap) SavePNG(path string) error {
	img, err := render.Binary(m.Res.internal(), m.Hot)
	if err != nil {
		return err
	}
	return render.SavePNG(path, img)
}

// Window is a 2-d data-space rectangle selecting the region a render
// covers — the pan/zoom primitive for interactive exploration. The zero
// Window means "the dataset's bounding box plus the configured margin".
type Window struct {
	MinX, MinY, MaxX, MaxY float64
}

// IsZero reports whether the window is unset.
func (w Window) IsZero() bool { return w == Window{} }

func (w Window) validate() error {
	if w.MaxX <= w.MinX || w.MaxY <= w.MinY {
		return fmt.Errorf("quad: degenerate window [%g,%g]x[%g,%g]", w.MinX, w.MaxX, w.MinY, w.MaxY)
	}
	return nil
}

func (k *KDV) newGrid(res Resolution) (*grid.Grid, error) {
	return k.newGridIn(res, Window{})
}

func (k *KDV) newGridIn(res Resolution, w Window) (*grid.Grid, error) {
	if k.pts.Dim != 2 {
		return nil, fmt.Errorf("quad: rendering requires a 2-d dataset, got %d-d (use Estimate for general KDE)", k.pts.Dim)
	}
	if w.IsZero() {
		return grid.ForDataset(res.internal(), k.pts, k.cfg.seedWindow)
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	return grid.New(res.internal(), geomRect(w))
}

// renderValues evaluates eval for every pixel of g, splitting rows across
// the configured number of workers. Each worker polls ctx between rows, so
// a cancelled context stops the render within one row of work per worker;
// the first context error is returned after all workers have exited.
func (k *KDV) renderValues(ctx context.Context, g *grid.Grid, eval func(q []float64, scratch *evalCtx) float64) ([]float64, error) {
	vals := make([]float64, g.Res.Pixels())
	workers := k.cfg.workers
	if workers > g.Res.H {
		workers = g.Res.H
	}
	var firstErr error
	var errOnce sync.Once
	var wg sync.WaitGroup
	rows := make(chan int, g.Res.H)
	for y := 0; y < g.Res.H; y++ {
		rows <- y
	}
	close(rows)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ec, err := k.newEvalCtx()
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			defer ec.release(k)
			q := make([]float64, 2)
			for y := range rows {
				if ctx.Err() != nil {
					return
				}
				for x := 0; x < g.Res.W; x++ {
					g.Query(x, y, q)
					vals[g.Index(x, y)] = eval(q, ec)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return vals, nil
}

// evalCtx carries the per-worker evaluation state: the worker's private
// engine for bound-based methods, nil for scan-based methods.
type evalCtx struct {
	eng *engine.Engine
}

func (k *KDV) newEvalCtx() (*evalCtx, error) {
	if k.proto == nil {
		return &evalCtx{}, nil
	}
	e, err := k.acquireEngine()
	if err != nil {
		return nil, err
	}
	return &evalCtx{eng: e}, nil
}

func (c *evalCtx) release(k *KDV) {
	if c.eng != nil {
		k.releaseEngine(c.eng)
	}
}

// RenderEps computes the full εKDV color map at the given resolution over
// the dataset's bounding window.
func (k *KDV) RenderEps(res Resolution, eps float64) (*DensityMap, error) {
	return k.RenderEpsInCtx(context.Background(), res, eps, Window{})
}

// RenderEpsCtx is RenderEps under a context: cancellation (client
// disconnect, deadline) stops the row workers within one row of work each
// and returns ctx.Err().
func (k *KDV) RenderEpsCtx(ctx context.Context, res Resolution, eps float64) (*DensityMap, error) {
	return k.RenderEpsInCtx(ctx, res, eps, Window{})
}

// RenderEpsIn is RenderEps over an explicit data-space window — the
// pan/zoom form for interactive exploration. A zero Window selects the
// dataset's bounding box.
func (k *KDV) RenderEpsIn(res Resolution, eps float64, win Window) (*DensityMap, error) {
	return k.RenderEpsInCtx(context.Background(), res, eps, win)
}

// RenderEpsInCtx is RenderEpsIn under a context (see RenderEpsCtx).
func (k *KDV) RenderEpsInCtx(ctx context.Context, res Resolution, eps float64, win Window) (*DensityMap, error) {
	if eps < 0 {
		return nil, fmt.Errorf("quad: negative relative error %g", eps)
	}
	g, err := k.newGridIn(res, win)
	if err != nil {
		return nil, err
	}
	kern := k.cfg.kern.internal()
	var eval func(q []float64, ctx *evalCtx) float64
	switch k.cfg.method {
	case MethodExact:
		eval = func(q []float64, _ *evalCtx) float64 {
			return bounds.ExactScan(k.pts, k.weights, kern, k.bw.Gamma, k.bw.Weight, q)
		}
	case MethodZOrder:
		eval = func(q []float64, _ *evalCtx) float64 {
			return bounds.ExactScan(k.sample, nil, kern, k.bw.Gamma, k.sampleWeight, q)
		}
	default:
		eval = func(q []float64, ec *evalCtx) float64 {
			v, _ := ec.eng.EvalEps(q, eps)
			return v
		}
	}
	vals, err := k.renderValues(ctx, g, eval)
	if err != nil {
		return nil, err
	}
	return &DensityMap{
		Res:       res,
		Values:    vals,
		WindowMin: [2]float64{g.Window.Min[0], g.Window.Min[1]},
		WindowMax: [2]float64{g.Window.Max[0], g.Window.Max[1]},
	}, nil
}

// RenderTau computes the full τKDV two-color map at the given resolution.
func (k *KDV) RenderTau(res Resolution, tau float64) (*HotspotMap, error) {
	return k.RenderTauInCtx(context.Background(), res, tau, Window{})
}

// RenderTauCtx is RenderTau under a context (see RenderEpsCtx).
func (k *KDV) RenderTauCtx(ctx context.Context, res Resolution, tau float64) (*HotspotMap, error) {
	return k.RenderTauInCtx(ctx, res, tau, Window{})
}

// RenderTauIn is RenderTau over an explicit data-space window (see
// RenderEpsIn).
func (k *KDV) RenderTauIn(res Resolution, tau float64, win Window) (*HotspotMap, error) {
	return k.RenderTauInCtx(context.Background(), res, tau, win)
}

// RenderTauInCtx is RenderTauIn under a context (see RenderEpsCtx).
func (k *KDV) RenderTauInCtx(ctx context.Context, res Resolution, tau float64, win Window) (*HotspotMap, error) {
	g, err := k.newGridIn(res, win)
	if err != nil {
		return nil, err
	}
	kern := k.cfg.kern.internal()
	hot := make([]bool, res.internal().Pixels())
	eval := func(q []float64, ec *evalCtx) float64 {
		var h bool
		switch k.cfg.method {
		case MethodExact:
			h = bounds.ExactScan(k.pts, k.weights, kern, k.bw.Gamma, k.bw.Weight, q) >= tau
		case MethodZOrder:
			h = bounds.ExactScan(k.sample, nil, kern, k.bw.Gamma, k.sampleWeight, q) >= tau
		default:
			h, _ = ec.eng.EvalTau(q, tau)
		}
		if h {
			return 1
		}
		return 0
	}
	vals, err := k.renderValues(ctx, g, eval)
	if err != nil {
		return nil, err
	}
	for i, v := range vals {
		hot[i] = v != 0
	}
	return &HotspotMap{
		Res:       res,
		Tau:       tau,
		Hot:       hot,
		WindowMin: [2]float64{g.Window.Min[0], g.Window.Min[1]},
		WindowMax: [2]float64{g.Window.Max[0], g.Window.Max[1]},
	}, nil
}

// ThresholdStats estimates the mean μ and standard deviation σ of the
// density over a stride-sampled pixel grid, the quantities the paper's τ
// ladder (μ ± kσ) is built from. Values are εKDV estimates with the given
// ε (use a small ε like 0.01).
func (k *KDV) ThresholdStats(res Resolution, stride int, eps float64) (mu, sigma float64, err error) {
	return k.ThresholdStatsCtx(context.Background(), res, stride, eps)
}

// ThresholdStatsCtx is ThresholdStats under a context: cancellation is
// polled between sample rows and returns ctx.Err().
func (k *KDV) ThresholdStatsCtx(ctx context.Context, res Resolution, stride int, eps float64) (mu, sigma float64, err error) {
	if stride < 1 {
		stride = 1
	}
	g, err := k.newGrid(res)
	if err != nil {
		return 0, 0, err
	}
	var samples []float64
	q := make([]float64, 2)
	for y := 0; y < res.H; y += stride {
		if err := ctx.Err(); err != nil {
			return 0, 0, err
		}
		for x := 0; x < res.W; x += stride {
			g.Query(x, y, q)
			v, err := k.Estimate(q, eps)
			if err != nil {
				return 0, 0, err
			}
			samples = append(samples, v)
		}
	}
	mu, sigma = stats.MuSigma(samples)
	return mu, sigma, nil
}

// ProgressiveResult is a partial color map produced under a time budget.
type ProgressiveResult struct {
	Map *DensityMap
	// Evaluated is the number of pixels computed exactly (the rest carry
	// coarse fill values from enclosing regions).
	Evaluated int
	// Complete reports whether every pixel was evaluated before the budget
	// expired.
	Complete bool
	// Elapsed is the wall-clock time consumed.
	Elapsed time.Duration
}

// RenderProgressive runs the progressive visualization framework (paper
// Section 6): pixels are εKDV-evaluated in quad-tree order and each value
// fills its sub-region until refined, so a spatially complete coarse map
// exists almost immediately. The run stops when budget elapses (≤ 0 means
// run to completion) or maxPixels pixels were evaluated (≤ 0 means all).
func (k *KDV) RenderProgressive(res Resolution, eps float64, budget time.Duration, maxPixels int) (*ProgressiveResult, error) {
	return k.RenderProgressiveInCtx(context.Background(), res, eps, budget, maxPixels, Window{})
}

// RenderProgressiveCtx is RenderProgressive under a context: cancellation
// is polled between evaluations and returns ctx.Err() promptly. Budget
// expiry still yields the normal partial result with a nil error;
// cancellation is the caller abandoning the render, so no result is
// returned.
func (k *KDV) RenderProgressiveCtx(ctx context.Context, res Resolution, eps float64, budget time.Duration, maxPixels int) (*ProgressiveResult, error) {
	return k.RenderProgressiveInCtx(ctx, res, eps, budget, maxPixels, Window{})
}

// RenderProgressiveIn is RenderProgressive over an explicit data-space
// window (see RenderEpsIn). A zero Window selects the dataset's bounding
// box.
func (k *KDV) RenderProgressiveIn(res Resolution, eps float64, budget time.Duration, maxPixels int, win Window) (*ProgressiveResult, error) {
	return k.RenderProgressiveInCtx(context.Background(), res, eps, budget, maxPixels, win)
}

// RenderProgressiveInCtx is RenderProgressiveIn under a context (see
// RenderProgressiveCtx).
func (k *KDV) RenderProgressiveInCtx(ctx context.Context, res Resolution, eps float64, budget time.Duration, maxPixels int, win Window) (*ProgressiveResult, error) {
	if eps < 0 {
		return nil, fmt.Errorf("quad: negative relative error %g", eps)
	}
	g, err := k.newGridIn(res, win)
	if err != nil {
		return nil, err
	}
	order, err := progressive.BuildOrder(res.internal())
	if err != nil {
		return nil, err
	}
	ec, err := k.newEvalCtx()
	if err != nil {
		return nil, err
	}
	defer ec.release(k)
	kern := k.cfg.kern.internal()
	q := make([]float64, 2)
	eval := func(px, py int) float64 {
		g.Query(px, py, q)
		switch k.cfg.method {
		case MethodExact:
			return bounds.ExactScan(k.pts, k.weights, kern, k.bw.Gamma, k.bw.Weight, q)
		case MethodZOrder:
			return bounds.ExactScan(k.sample, nil, kern, k.bw.Gamma, k.sampleWeight, q)
		default:
			v, _ := ec.eng.EvalEps(q, eps)
			return v
		}
	}
	r, ctxErr := progressive.RunCtx(ctx, order, eval, budget, maxPixels)
	if ctxErr != nil {
		return nil, ctxErr
	}
	return &ProgressiveResult{
		Map: &DensityMap{
			Res:       res,
			Values:    r.Values.Data,
			WindowMin: [2]float64{g.Window.Min[0], g.Window.Min[1]},
			WindowMax: [2]float64{g.Window.Max[0], g.Window.Max[1]},
		},
		Evaluated: r.Evaluated,
		Complete:  r.Complete,
		Elapsed:   r.Elapsed,
	}, nil
}

// Snapshot is a partial color-map state streamed by
// RenderProgressiveStream: spatially complete at every level, refining
// monotonically across snapshots.
type Snapshot struct {
	// Map is the current raster. Its Values alias the live buffer; copy
	// them if the snapshot is retained beyond the callback.
	Map *DensityMap
	// Evaluated is the number of exactly evaluated pixels so far.
	Evaluated int
	// Level is the quad-tree refinement depth just completed.
	Level int
	// Elapsed is the wall-clock time since the render started.
	Elapsed time.Duration
	// Final marks the stream's last snapshot.
	Final bool
}

// RenderProgressiveStream is the streaming form of RenderProgressive: emit
// is invoked with a spatially complete partial map after every completed
// quad-tree refinement level and once at the end; returning false stops the
// render — the "user terminates the process at any time" interaction of
// paper Section 6. budget ≤ 0 means no time limit.
func (k *KDV) RenderProgressiveStream(res Resolution, eps float64, budget time.Duration, emit func(Snapshot) bool) (*ProgressiveResult, error) {
	return k.RenderProgressiveStreamCtx(context.Background(), res, eps, budget, emit)
}

// RenderProgressiveStreamCtx is RenderProgressiveStream under a context:
// cancellation is polled between evaluations, stops the stream without a
// final snapshot, and returns ctx.Err().
func (k *KDV) RenderProgressiveStreamCtx(ctx context.Context, res Resolution, eps float64, budget time.Duration, emit func(Snapshot) bool) (*ProgressiveResult, error) {
	if eps < 0 {
		return nil, fmt.Errorf("quad: negative relative error %g", eps)
	}
	if emit == nil {
		return nil, fmt.Errorf("quad: nil snapshot callback (use RenderProgressive for non-streaming renders)")
	}
	g, err := k.newGrid(res)
	if err != nil {
		return nil, err
	}
	order, err := progressive.BuildOrder(res.internal())
	if err != nil {
		return nil, err
	}
	ec, err := k.newEvalCtx()
	if err != nil {
		return nil, err
	}
	defer ec.release(k)
	kern := k.cfg.kern.internal()
	q := make([]float64, 2)
	eval := func(px, py int) float64 {
		g.Query(px, py, q)
		switch k.cfg.method {
		case MethodExact:
			return bounds.ExactScan(k.pts, k.weights, kern, k.bw.Gamma, k.bw.Weight, q)
		case MethodZOrder:
			return bounds.ExactScan(k.sample, nil, kern, k.bw.Gamma, k.sampleWeight, q)
		default:
			v, _ := ec.eng.EvalEps(q, eps)
			return v
		}
	}
	dm := &DensityMap{
		Res:       res,
		WindowMin: [2]float64{g.Window.Min[0], g.Window.Min[1]},
		WindowMax: [2]float64{g.Window.Max[0], g.Window.Max[1]},
	}
	r, ctxErr := progressive.RunStreamCtx(ctx, order, eval, budget, 0, func(s progressive.Snapshot) bool {
		dm.Values = s.Values
		return emit(Snapshot{
			Map:       dm,
			Evaluated: s.Evaluated,
			Level:     s.Level,
			Elapsed:   s.Elapsed,
			Final:     s.Final,
		})
	})
	if ctxErr != nil {
		return nil, ctxErr
	}
	dm.Values = r.Values.Data
	return &ProgressiveResult{
		Map:       dm,
		Evaluated: r.Evaluated,
		Complete:  r.Complete,
		Elapsed:   r.Elapsed,
	}, nil
}

// geomRect converts a public Window to the internal rectangle type.
func geomRect(w Window) geom.Rect {
	return geom.Rect{Min: []float64{w.MinX, w.MinY}, Max: []float64{w.MaxX, w.MaxY}}
}
