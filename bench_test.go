// Benchmarks mirroring the paper's evaluation (Section 7): one bench family
// per table/figure, at container-friendly scale. The full parameter sweeps
// (paper cardinalities and resolutions) live in cmd/kdvbench; these benches
// pin the relative method ordering that each figure reports.
//
// Run with:  go test -bench=. -benchmem .
package quad_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/dataset"
	"github.com/quadkdv/quad/internal/engine"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/kdtree"
	"github.com/quadkdv/quad/internal/kernel"
	"github.com/quadkdv/quad/internal/pca"
	"github.com/quadkdv/quad/internal/stats"
)

// benchN is the dataset cardinality shared by the render benches.
const benchN = 50000

// benchRes is the raster the render benches evaluate.
var benchRes = quad.Resolution{W: 32, H: 24}

// cache of constructed KDV instances keyed by configuration.
var (
	benchMu   sync.Mutex
	benchKDVs = map[string]*quad.KDV{}
	benchTaus = map[string]float64{}
	benchData = map[string][]float64{}
	benchDims = map[string]int{}
)

func benchKey(ds string, kern quad.Kernel, m quad.Method, n int) string {
	return fmt.Sprintf("%s/%s/%s/%d", ds, kern, m, n)
}

func getData(tb testing.TB, name string, n int) ([]float64, int) {
	benchMu.Lock()
	defer benchMu.Unlock()
	key := fmt.Sprintf("%s/%d", name, n)
	if d, ok := benchData[key]; ok {
		return d, benchDims[key]
	}
	pts, err := dataset.Generate(name, n, 1)
	if err != nil {
		tb.Fatal(err)
	}
	pts = dataset.First2D(pts)
	benchData[key] = pts.Coords
	benchDims[key] = pts.Dim
	return pts.Coords, pts.Dim
}

func getKDV(tb testing.TB, name string, kern quad.Kernel, m quad.Method, n int) *quad.KDV {
	coords, dim := getData(tb, name, n)
	benchMu.Lock()
	defer benchMu.Unlock()
	key := benchKey(name, kern, m, n)
	if k, ok := benchKDVs[key]; ok {
		return k
	}
	k, err := quad.New(coords, dim,
		quad.WithKernel(kern), quad.WithMethod(m), quad.WithZOrderGuarantee(0.01, 0.2))
	if err != nil {
		tb.Fatal(err)
	}
	benchKDVs[key] = k
	return k
}

func getTau(tb testing.TB, name string, kern quad.Kernel, n int) float64 {
	k := getKDV(tb, name, kern, quad.MethodQuadratic, n)
	benchMu.Lock()
	defer benchMu.Unlock()
	key := fmt.Sprintf("%s/%s/%d", name, kern, n)
	if tau, ok := benchTaus[key]; ok {
		return tau
	}
	mu, _, err := k.ThresholdStats(benchRes, 4, 0.01)
	if err != nil {
		tb.Fatal(err)
	}
	benchTaus[key] = mu
	return mu
}

var epsBenchMethods = []struct {
	label  string
	method quad.Method
}{
	{"aKDE", quad.MethodMinMax},
	{"KARL", quad.MethodLinear},
	{"QUAD", quad.MethodQuadratic},
	{"Zorder", quad.MethodZOrder},
}

var tauBenchMethods = []struct {
	label  string
	method quad.Method
}{
	{"tKDC", quad.MethodMinMax},
	{"KARL", quad.MethodLinear},
	{"QUAD", quad.MethodQuadratic},
}

// BenchmarkFig14EpsKDV: εKDV render time per method (crime analogue,
// ε=0.01) — the Figure 14 series.
func BenchmarkFig14EpsKDV(b *testing.B) {
	for _, m := range epsBenchMethods {
		b.Run(m.label, func(b *testing.B) {
			k := getKDV(b, "crime", quad.Gaussian, m.method, benchN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.RenderEps(benchRes, 0.01); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig15TauKDV: τKDV render time per method at τ=μ — Figure 15.
func BenchmarkFig15TauKDV(b *testing.B) {
	tau := getTau(b, "crime", quad.Gaussian, benchN)
	for _, m := range tauBenchMethods {
		b.Run(m.label, func(b *testing.B) {
			k := getKDV(b, "crime", quad.Gaussian, m.method, benchN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.RenderTau(benchRes, tau); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig16Resolution: QUAD εKDV render across resolutions — the
// Figure 16 scaling series.
func BenchmarkFig16Resolution(b *testing.B) {
	for _, res := range []quad.Resolution{{W: 16, H: 12}, {W: 32, H: 24}, {W: 64, H: 48}, {W: 128, H: 96}} {
		b.Run(fmt.Sprintf("%dx%d", res.W, res.H), func(b *testing.B) {
			k := getKDV(b, "crime", quad.Gaussian, quad.MethodQuadratic, benchN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.RenderEps(res, 0.01); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig17DatasetSize: QUAD εKDV render across hep cardinalities —
// the Figure 17 scaling series. Sizes are subsamples of ONE generated
// dataset (as the paper varies size "via sampling"), so the density
// structure and Scott bandwidth stay comparable across n.
func BenchmarkFig17DatasetSize(b *testing.B) {
	coords, dim := getData(b, "hep", 200000)
	full := geom.NewPoints(append([]float64(nil), coords...), dim)
	for _, n := range []int{25000, 50000, 100000, 200000} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			sub := dataset.Subsample(full, n, 1)
			k, err := quad.New(sub.Clone().Coords, dim)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.RenderEps(benchRes, 0.01); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig18Refinement: per-pixel refinement cost of KARL vs QUAD on
// the densest region — the mechanism behind Figure 18's iteration counts.
func BenchmarkFig18Refinement(b *testing.B) {
	for _, m := range []struct {
		label  string
		method quad.Method
	}{{"KARL", quad.MethodLinear}, {"QUAD", quad.MethodQuadratic}} {
		b.Run(m.label, func(b *testing.B) {
			k := getKDV(b, "home", quad.Gaussian, m.method, benchN)
			q := []float64{25, 52} // inside the dense cooling-season mode
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.Estimate(q, 0.01); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig19Quality: εKDV render including the quality bookkeeping of
// Figure 19 (values retained for the comparison).
func BenchmarkFig19Quality(b *testing.B) {
	k := getKDV(b, "home", quad.Gaussian, quad.MethodQuadratic, benchN)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		dm, err := k.RenderEps(benchRes, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		mu, _ := dm.MuSigma()
		sink += mu
	}
	_ = sink
}

// BenchmarkFig20Progressive: progressive render under a fixed budget —
// Figure 20's time-ladder, reported as pixels evaluated per second.
func BenchmarkFig20Progressive(b *testing.B) {
	for _, budget := range []time.Duration{10 * time.Millisecond, 50 * time.Millisecond} {
		b.Run(budget.String(), func(b *testing.B) {
			k := getKDV(b, "home", quad.Gaussian, quad.MethodQuadratic, benchN)
			res := quad.Resolution{W: 128, H: 128}
			var evaluated int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := k.RenderProgressive(res, 0.01, budget, 0)
				if err != nil {
					b.Fatal(err)
				}
				evaluated += r.Evaluated
			}
			b.StopTimer()
			b.ReportMetric(float64(evaluated)/float64(b.N), "pixels/render")
		})
	}
}

// BenchmarkFig22OtherKernelsEps: εKDV for triangular and cosine kernels —
// Figure 22's series (KARL has no bounds here; aKDE vs QUAD).
func BenchmarkFig22OtherKernelsEps(b *testing.B) {
	for _, kern := range []quad.Kernel{quad.Triangular, quad.Cosine} {
		for _, m := range []struct {
			label  string
			method quad.Method
		}{{"aKDE", quad.MethodMinMax}, {"QUAD", quad.MethodQuadratic}} {
			b.Run(fmt.Sprintf("%s/%s", kern, m.label), func(b *testing.B) {
				k := getKDV(b, "crime", kern, m.method, benchN)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := k.RenderEps(benchRes, 0.01); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig23OtherKernelsTau: τKDV for triangular and cosine kernels —
// Figure 23's series (tKDC vs QUAD).
func BenchmarkFig23OtherKernelsTau(b *testing.B) {
	for _, kern := range []quad.Kernel{quad.Triangular, quad.Cosine} {
		tau := getTau(b, "crime", kern, benchN)
		for _, m := range []struct {
			label  string
			method quad.Method
		}{{"tKDC", quad.MethodMinMax}, {"QUAD", quad.MethodQuadratic}} {
			b.Run(fmt.Sprintf("%s/%s", kern, m.label), func(b *testing.B) {
				k := getKDV(b, "crime", kern, m.method, benchN)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := k.RenderTau(benchRes, tau); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig24Dimensionality: per-query εKDE cost vs dimensionality on
// PCA-projected hep vectors — Figure 24's throughput series (ns/op is the
// reciprocal of queries/sec).
func BenchmarkFig24Dimensionality(b *testing.B) {
	full := dataset.Hep(30000, 10, 1)
	model, err := pca.Fit(full)
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range []int{2, 4, 6, 8, 10} {
		proj, err := model.Project(full, d)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range []struct {
			label  string
			method quad.Method
		}{{"SCAN", quad.MethodExact}, {"QUAD", quad.MethodQuadratic}} {
			b.Run(fmt.Sprintf("d%d/%s", d, m.label), func(b *testing.B) {
				k, err := quad.New(proj.Coords, d, quad.WithMethod(m.method))
				if err != nil {
					b.Fatal(err)
				}
				q := proj.At(7)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := k.Estimate(q, 0.01); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig27Exponential: εKDV and τKDV with the exponential kernel —
// the appendix 9.7 series.
func BenchmarkFig27Exponential(b *testing.B) {
	tau := getTau(b, "crime", quad.Exponential, benchN)
	for _, m := range []struct {
		label  string
		method quad.Method
	}{{"aKDE", quad.MethodMinMax}, {"QUAD", quad.MethodQuadratic}} {
		b.Run("eps/"+m.label, func(b *testing.B) {
			k := getKDV(b, "crime", quad.Exponential, m.method, benchN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.RenderEps(benchRes, 0.01); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("tau/"+m.label, func(b *testing.B) {
			k := getKDV(b, "crime", quad.Exponential, m.method, benchN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.RenderTau(benchRes, tau); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLeafSize: kd-tree leaf capacity sensitivity (DESIGN.md
// design-choice ablation).
func BenchmarkAblationLeafSize(b *testing.B) {
	coords, dim := getData(b, "crime", benchN)
	for _, leaf := range []int{8, 30, 128} {
		b.Run(fmt.Sprintf("leaf%d", leaf), func(b *testing.B) {
			k, err := quad.New(coords, dim, quad.WithLeafSize(leaf))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.RenderEps(benchRes, 0.01); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWorkers: render parallelism (the paper's future-work
// knob; default single-threaded).
func BenchmarkAblationWorkers(b *testing.B) {
	coords, dim := getData(b, "crime", benchN)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			k, err := quad.New(coords, dim, quad.WithWorkers(workers))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.RenderEps(benchRes, 0.01); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexBuild: kd-tree construction cost (offline stage of the
// Table 6 indexing methods).
func BenchmarkIndexBuild(b *testing.B) {
	coords, dim := getData(b, "crime", benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := quad.New(coords, dim); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPointQuery: single-query latency, QUAD vs exact scan — the
// library's core primitive.
func BenchmarkPointQuery(b *testing.B) {
	q := []float64{50, 50}
	b.Run("QUAD", func(b *testing.B) {
		k := getKDV(b, "crime", quad.Gaussian, quad.MethodQuadratic, benchN)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := k.Estimate(q, 0.01); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("EXACT", func(b *testing.B) {
		k := getKDV(b, "crime", quad.Gaussian, quad.MethodExact, benchN)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := k.Density(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBallBounds: MBR-only vs ball-intersected node distance
// intervals (WithTightNodeBounds).
func BenchmarkAblationBallBounds(b *testing.B) {
	coords, dim := getData(b, "crime", benchN)
	for _, on := range []bool{false, true} {
		name := "mbr"
		if on {
			name = "mbr+ball"
		}
		b.Run(name, func(b *testing.B) {
			k, err := quad.New(coords, dim, quad.WithTightNodeBounds(on))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.RenderEps(benchRes, 0.01); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClassify: kernel density classification via bound racing vs
// computing both densities to high precision.
func BenchmarkClassify(b *testing.B) {
	coordsA, dim := getData(b, "crime", 20000)
	coordsB, _ := getData(b, "home", 20000)
	toPts := func(coords []float64) [][]float64 {
		out := make([][]float64, len(coords)/dim)
		for i := range out {
			out[i] = coords[i*dim : (i+1)*dim]
		}
		return out
	}
	c, err := quad.NewClassifier(map[string][][]float64{
		"crime": toPts(coordsA),
		"home":  toPts(coordsB),
	}, quad.Gaussian, 0)
	if err != nil {
		b.Fatal(err)
	}
	q := []float64{coordsA[0], coordsA[1]}
	b.Run("race", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Classify(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("densities", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.ClassDensities(q, 0.01); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationTangent: Gaussian lower-bound tangent-point strategies
// (the paper's Equation 3 mean vs midpoint vs endpoint) — DESIGN.md t*
// ablation.
func BenchmarkAblationTangent(b *testing.B) {
	coords, dim := getData(b, "crime", benchN)
	pts := geom.NewPoints(append([]float64(nil), coords...), dim)
	bw := stats.ScottsRule(pts, kernel.Gaussian)
	tree, err := kdtree.Build(pts, kdtree.Options{Gram: true})
	if err != nil {
		b.Fatal(err)
	}
	g, err := grid.ForDataset(grid.Resolution{W: benchRes.W, H: benchRes.H}, tree.Pts, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		choice bounds.TangentChoice
	}{{"mean", bounds.TangentMean}, {"midpoint", bounds.TangentMidpoint}, {"xmax", bounds.TangentXMax}} {
		b.Run(tc.name, func(b *testing.B) {
			ev, err := bounds.NewEvaluator(kernel.Gaussian, bw.Gamma, bw.Weight, bounds.Quadratic, dim)
			if err != nil {
				b.Fatal(err)
			}
			ev.SetTangentChoice(tc.choice)
			eng, err := engine.New(tree, ev)
			if err != nil {
				b.Fatal(err)
			}
			q := make([]float64, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for y := 0; y < benchRes.H; y++ {
					for x := 0; x < benchRes.W; x++ {
						g.Query(x, y, q)
						eng.EvalEps(q, 0.01)
					}
				}
			}
		})
	}
}

// BenchmarkRender is the PR 2 acceptance benchmark: a full εKDV render
// (Gaussian, QUAD bounds, ε=0.05, 512×512, crime analogue at 30k points)
// with the tile-shared traversal (default tile size) against the per-pixel
// baseline (WithTileSize(1)). BENCH_PR2.json records the measured speedup
// and per-pixel node-evaluation reduction; regenerate it with `make bench`.
func BenchmarkRender(b *testing.B) {
	const (
		renderN   = 30000
		renderEps = 0.05
	)
	res := quad.Resolution{W: 512, H: 512}
	coords, dim := getData(b, "crime", renderN)
	for _, mode := range []struct {
		name string
		tile int
	}{{"tile", 0}, {"perpixel", 1}} {
		b.Run(mode.name, func(b *testing.B) {
			k, err := quad.New(coords, dim,
				quad.WithKernel(quad.Gaussian),
				quad.WithMethod(quad.MethodQuadratic),
				quad.WithTileSize(mode.tile))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var st quad.RenderStats
			for i := 0; i < b.N; i++ {
				dm, s, err := k.RenderEpsStats(res, renderEps)
				if err != nil {
					b.Fatal(err)
				}
				dm.Release()
				st = s
			}
			b.ReportMetric(st.NodesPerPixel(), "nodes/px")
			b.ReportMetric(float64(st.SharedNodeEvals)/float64(st.Pixels), "shared/px")
		})
	}
}

// BenchmarkTelemetryOverhead is the PR 4 acceptance benchmark: the same
// εKDV render through the plain entry point (nil stats recorder — the
// disabled-telemetry hot path) and through the stats-collecting one. The
// two sub-bench times must stay within 2% of each other; BENCH_PR4.json
// records the measured delta (regenerate with `make bench`).
func BenchmarkTelemetryOverhead(b *testing.B) {
	const (
		renderN   = 30000
		renderEps = 0.05
	)
	res := quad.Resolution{W: 256, H: 256}
	coords, dim := getData(b, "crime", renderN)
	k, err := quad.New(coords, dim,
		quad.WithKernel(quad.Gaussian),
		quad.WithMethod(quad.MethodQuadratic))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("nostats", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dm, err := k.RenderEps(res, renderEps)
			if err != nil {
				b.Fatal(err)
			}
			dm.Release()
		}
	})
	b.Run("stats", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dm, _, err := k.RenderEpsStats(res, renderEps)
			if err != nil {
				b.Fatal(err)
			}
			dm.Release()
		}
	})
}
