package quad

import (
	"fmt"
	"sort"

	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/zorder"
)

// WithShard restricts the KDV to shard index of a count-way partition of the
// dataset — the engine primitive behind horizontal scale-out. The partition
// is a contiguous range split of the Z-order (Morton) curve over the full
// dataset's bounding rectangle, so shards are spatially coherent and the
// split is deterministic for a given dataset.
//
// Kernel densities are additive: for any query q,
//
//	F_P(q) = Σ_i F_{P_i}(q)
//
// over a partition {P_i} of P. To make per-shard renders compose exactly to
// the full-dataset render, a sharded KDV derives everything global from the
// FULL dataset before restricting to the shard's points:
//
//   - bandwidth: Scott's/Silverman's rule (and the automatic per-point
//     weight 1/n or 1/Σw) is computed over all points, not the shard;
//   - render window: a zero Window renders the full dataset's bounding box
//     plus margin, not the shard's, so per-shard rasters align pixel for
//     pixel and can be merged by addition.
//
// Per-shard εKDV rasters each satisfy |v_i − F_{P_i}| ≤ ε·F_{P_i}, so their
// sum satisfies the same relative-ε guarantee against the full density —
// the paper's contract survives the fan-out.
//
// count must be at least 1 and at most the dataset cardinality (every shard
// must be non-empty); index must be in [0, count). WithShard is incompatible
// with MethodZOrder, whose sampling guarantee is dimensioned for the full
// dataset. WithShard(_, 1) is the identity partition: the full dataset with
// the shard bookkeeping attached.
//
// Sharding composes with WithEngineLayout: each shard indexes its own point
// slice in the configured layout (flat SoA by default), and a shard's render
// is bit-identical across layouts — the conformance suite checks per-shard
// flat-vs-pointer identity, so distributed merges never mix engine behaviors.
func WithShard(index, count int) Option {
	return func(c *config) { c.sharded, c.shardIndex, c.shardCount = true, index, count }
}

// Shard reports the shard this KDV was restricted to and the partition
// width. An unsharded KDV reports (0, 1).
func (k *KDV) Shard() (index, count int) {
	if !k.cfg.sharded {
		return 0, 1
	}
	return k.cfg.shardIndex, k.cfg.shardCount
}

// shardRange returns the half-open index range [lo, hi) of shard index in a
// count-way split of n elements, distributing the remainder over the first
// n mod count shards so sizes differ by at most one.
func shardRange(n, index, count int) (lo, hi int) {
	q, r := n/count, n%count
	lo = index*q + min(index, r)
	hi = lo + q
	if index < r {
		hi++
	}
	return lo, hi
}

// zorderPermutation returns the dataset's point indices sorted along the
// Z-order curve over rect. Ties (points quantizing to the same Morton code)
// break by original index, so the permutation — and therefore every shard —
// is deterministic.
func zorderPermutation(pts geom.Points, rect geom.Rect) []int {
	n := pts.Len()
	codes := make([]uint64, n)
	for i := 0; i < n; i++ {
		codes[i] = zorder.Code(pts.At(i), rect)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		ca, cb := codes[perm[a]], codes[perm[b]]
		if ca != cb {
			return ca < cb
		}
		return perm[a] < perm[b]
	})
	return perm
}

// applyShard validates the configured shard and replaces pts/weights with
// the shard's Z-order range, returning the full dataset's bounding rect for
// window derivation. Called by newKDV after the bandwidth (and the weight
// normalization) has been fixed from the full dataset.
func applyShard(cfg *config, pts geom.Points, weights []float64) (geom.Points, []float64, geom.Rect, error) {
	index, count := cfg.shardIndex, cfg.shardCount
	if count < 1 {
		return pts, weights, geom.Rect{}, fmt.Errorf("quad: shard count %d must be at least 1", count)
	}
	if index < 0 || index >= count {
		return pts, weights, geom.Rect{}, fmt.Errorf("quad: shard index %d out of range [0, %d)", index, count)
	}
	if cfg.method == MethodZOrder {
		return pts, weights, geom.Rect{}, fmt.Errorf("quad: WithShard is incompatible with MethodZOrder (the sampling guarantee is dimensioned for the full dataset)")
	}
	if pts.Dim != 2 {
		return pts, weights, geom.Rect{}, fmt.Errorf("quad: WithShard requires a 2-d dataset (Z-order split), got %d-d", pts.Dim)
	}
	n := pts.Len()
	if count > n {
		return pts, weights, geom.Rect{}, fmt.Errorf("quad: %d shards over %d points would leave empty shards", count, n)
	}
	rect := geom.BoundingRect(pts)
	perm := zorderPermutation(pts, rect)
	lo, hi := shardRange(n, index, count)
	coords := make([]float64, 0, (hi-lo)*pts.Dim)
	var ws []float64
	if weights != nil {
		ws = make([]float64, 0, hi-lo)
	}
	for _, pi := range perm[lo:hi] {
		coords = append(coords, pts.At(pi)...)
		if weights != nil {
			ws = append(ws, weights[pi])
		}
	}
	return geom.NewPoints(coords, pts.Dim), ws, rect, nil
}
