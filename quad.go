// Package quad is a fast kernel density visualization (KDV) library: a Go
// implementation of QUAD ("QUAD: Quadratic-Bound-based Kernel Density
// Visualization", SIGMOD 2020) together with the baselines the paper
// evaluates against.
//
// KDV colors every pixel q of a raster by the kernel density value
//
//	F_P(q) = Σ_{p∈P} w·K(q, p)
//
// which is expensive to evaluate exactly. The library answers the paper's
// two practical variants with strong guarantees:
//
//   - εKDV (Estimate, RenderEps): values within relative error ε of F_P(q);
//   - τKDV (IsHot, RenderTau): whether F_P(q) ≥ τ, for two-color hotspot
//     maps.
//
// Both run on a kd-tree refinement framework whose speed is set by the
// tightness of the node bound functions. Quadratic (the default) is QUAD's
// contribution — the tightest known bounds; Linear is the KARL baseline,
// MinMax the aKDE/tKDC baseline, ZOrder the sampling baseline, and Exact
// the sequential scan. A progressive renderer (RenderProgressive,
// RenderProgressiveStream) streams coarse-to-fine color maps under a
// wall-clock budget (paper Section 6).
//
// Every long-running entry point has a context-aware form (RenderEpsCtx,
// RenderTauCtx, RenderProgressiveCtx, EstimateCtx, ThresholdStatsCtx, …)
// that polls cancellation between rows of pixel work and returns ctx.Err()
// promptly — the primitive interactive servers need when users pan, zoom,
// or abandon requests mid-render. The plain forms are thin wrappers over
// context.Background().
//
// The same bound machinery also powers two kernel-method extensions from
// the paper's future-work list: kernel density classification
// (NewClassifier — per-class density bounds raced until one class provably
// wins) and Nadaraya–Watson kernel regression (NewRegressor — predictions
// refined to a certified tolerance).
//
// Quick start:
//
//	kdv, err := quad.NewFromPoints(points) // [][]float64, 2-d
//	if err != nil { ... }
//	dm, err := kdv.RenderEps(quad.Resolution{W: 640, H: 480}, 0.01)
//	if err != nil { ... }
//	err = dm.SavePNG("heatmap.png", true)
package quad

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/quadkdv/quad/internal/bounds"
	"github.com/quadkdv/quad/internal/engine"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/kdtree"
	"github.com/quadkdv/quad/internal/kdtree/flat"
	"github.com/quadkdv/quad/internal/kernel"
	"github.com/quadkdv/quad/internal/stats"
	"github.com/quadkdv/quad/internal/zorder"
)

// Kernel selects the kernel function K(q, p).
type Kernel int

// Supported kernels. Gaussian, Triangular, Cosine and Exponential are the
// paper's kernels (Equation 1 and Table 4); Epanechnikov, Quartic and
// Uniform are extensions.
const (
	Gaussian Kernel = iota
	Triangular
	Cosine
	Exponential
	Epanechnikov
	Quartic
	Uniform
)

// String returns the kernel's canonical name.
func (k Kernel) String() string { return kernel.Kernel(k).String() }

// ParseKernel maps a kernel name to its constant.
func ParseKernel(name string) (Kernel, error) {
	k, err := kernel.Parse(name)
	return Kernel(k), err
}

func (k Kernel) internal() kernel.Kernel { return kernel.Kernel(k) }

// Method selects the evaluation algorithm.
type Method int

const (
	// MethodQuadratic is QUAD — quadratic bounds, this paper's
	// contribution and the default.
	MethodQuadratic Method = iota
	// MethodLinear is KARL's linear bounds (Gaussian kernel only).
	MethodLinear
	// MethodMinMax is the aKDE (εKDV) / tKDC (τKDV) rectangle-distance
	// bound.
	MethodMinMax
	// MethodExact is the sequential scan baseline.
	MethodExact
	// MethodZOrder is the Z-order sampling baseline: exact KDV over a
	// systematic sample along a Morton curve, with a probabilistic (not
	// deterministic) error guarantee. 2-d datasets only.
	MethodZOrder
)

// String returns the method's canonical name.
func (m Method) String() string {
	switch m {
	case MethodQuadratic:
		return "quad"
	case MethodLinear:
		return "karl"
	case MethodMinMax:
		return "minmax"
	case MethodExact:
		return "exact"
	case MethodZOrder:
		return "zorder"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// ParseMethod maps a method name ("quad", "karl", "minmax", "exact",
// "zorder") to its constant.
func ParseMethod(name string) (Method, error) {
	for _, m := range []Method{MethodQuadratic, MethodLinear, MethodMinMax, MethodExact, MethodZOrder} {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("quad: unknown method %q", name)
}

// Resolution is an output raster size in pixels.
type Resolution struct{ W, H int }

// String formats the resolution as "WxH".
func (r Resolution) String() string { return grid.Resolution{W: r.W, H: r.H}.String() }

func (r Resolution) internal() grid.Resolution { return grid.Resolution{W: r.W, H: r.H} }

// Option configures a KDV instance.
type Option func(*config)

type config struct {
	kern       Kernel
	method     Method
	gamma      float64 // 0 → Scott's rule
	weight     float64 // 0 → 1/n
	leafSize   int
	workers    int
	zsampleEps float64 // ε the Z-order sample size is dimensioned for
	zdelta     float64
	seedWindow float64 // grid margin fraction
	ptWeights  []float64
	ballBounds bool
	bwRule     BandwidthRule
	tileSize   int
	sharded    bool
	shardIndex int
	shardCount int
	layout     EngineLayout
}

// EngineLayout selects the kd-tree memory layout the bound engine runs on.
type EngineLayout int

const (
	// LayoutFlat (the default) runs the engine over a contiguous
	// struct-of-arrays copy of the kd-tree: int32 node ids through parallel
	// statistic arrays in BFS order, which keeps the refinement hot loop
	// cache-resident. Renders are bit-identical to LayoutPointer.
	LayoutFlat EngineLayout = iota
	// LayoutPointer runs the engine over the original pointer-linked node
	// tree. It is retained as the test oracle for the flat engine (the
	// conformance suite renders both and requires bit-identical rasters)
	// and as a fallback while the flat layout matures.
	LayoutPointer
)

// WithEngineLayout selects the engine's tree memory layout (default
// LayoutFlat). Both layouts produce bit-identical results for every method,
// kernel, tile size, and shard configuration; LayoutPointer trades the flat
// layout's speed for the simpler, directly-debuggable representation.
func WithEngineLayout(l EngineLayout) Option { return func(c *config) { c.layout = l } }

// WithKernel selects the kernel function (default Gaussian).
func WithKernel(k Kernel) Option { return func(c *config) { c.kern = k } }

// WithMethod selects the evaluation method (default MethodQuadratic).
func WithMethod(m Method) Option { return func(c *config) { c.method = m } }

// WithBandwidth overrides Scott's rule with an explicit γ (kernel distance
// scale) and per-point weight w. Either value ≤ 0 keeps its automatic
// default (Scott's γ, w = 1/n).
func WithBandwidth(gamma, weight float64) Option {
	return func(c *config) { c.gamma, c.weight = gamma, weight }
}

// WithLeafSize sets the kd-tree leaf capacity (default 30).
func WithLeafSize(n int) Option { return func(c *config) { c.leafSize = n } }

// WithWorkers sets the number of goroutines used by the Render* calls.
// The default 1 matches the paper's single-threaded setting; higher values
// are the paper's "parallel computation" future-work knob.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithZOrderGuarantee dimensions the MethodZOrder sample for a target
// (ε, δ) probabilistic guarantee (defaults ε=0.01, δ=0.2 — the paper's
// "ε with probability 0.8").
func WithZOrderGuarantee(eps, delta float64) Option {
	return func(c *config) { c.zsampleEps, c.zdelta = eps, delta }
}

// WithWindowMargin sets the fractional margin added around the dataset's
// bounding box when deriving the render window (default 0.02).
func WithWindowMargin(frac float64) Option { return func(c *config) { c.seedWindow = frac } }

// WithTileSize sets the pixel tile edge used by the Render* calls (default
// 16). Renders are evaluated tile by tile: one shared kd-tree refinement per
// tile classifies index nodes once for all of the tile's pixels, and each
// pixel's refinement then warm-starts from the small residual frontier
// instead of the root. 1 disables sharing (the paper's pure per-pixel
// refinement — useful as a baseline); 0 or negative selects the default.
// Every setting honors the guarantees, but εKDV pixel values may differ
// across tile sizes: warm-started refinement can stop at a different
// (still ε-certified) interval than root refinement, so only τKDV hot
// masks are bit-identical for every tile size. For a fixed tile size,
// renders are deterministic and independent of the worker count — and of
// the engine layout: the tile-shared traversal is one code path over the
// Renderer interface, so the flat SoA engine and the pointer engine walk
// identical tile, sub-tile, and per-pixel refinement sequences (the
// conformance suite's flat-identity pass holds per tile size).
func WithTileSize(n int) Option { return func(c *config) { c.tileSize = n } }

// BandwidthRule selects the automatic bandwidth selector used when
// WithBandwidth is not given.
type BandwidthRule int

const (
	// Scott is Scott's rule h_j = σ_j·n^{−1/(d+4)} — the paper's choice
	// (Section 7.1) and the default.
	Scott BandwidthRule = iota
	// Silverman is Silverman's rule of thumb, Scott's factor scaled by
	// (4/(d+2))^{1/(d+4)} — slightly smoother maps.
	Silverman
)

// WithBandwidthRule selects the automatic bandwidth selector (default
// Scott). Ignored when WithBandwidth supplies an explicit γ.
func WithBandwidthRule(r BandwidthRule) Option { return func(c *config) { c.bwRule = r } }

// WithTightNodeBounds additionally intersects each index node's
// bounding-ball distance interval with its bounding-rectangle interval,
// tightening every method's bounds at the cost of one extra distance
// computation per node visit. Off by default to match the paper's
// MBR-only baselines.
func WithTightNodeBounds(on bool) Option { return func(c *config) { c.ballBounds = on } }

// WithPointWeights supplies per-point weights w_i ≥ 0, generalizing the KDE
// function to F_P(q) = Σ w·w_i·K(q, p_i) — the form the sampling literature's
// reweighted outputs need (paper Section 2). The slice must be parallel to
// the dataset; it is copied. Incompatible with MethodZOrder. With weights,
// the automatic scalar weight default becomes 1/Σw_i instead of 1/n.
func WithPointWeights(ws []float64) Option {
	return func(c *config) { c.ptWeights = ws }
}

// KDV is a kernel density visualizer over one dataset. It is safe for
// concurrent use by multiple goroutines: per-call engines are drawn from an
// internal pool.
type KDV struct {
	pts          geom.Points
	weights      []float64 // per-point weights, nil = uniform
	fullRect     geom.Rect // full-dataset bounds when sharded (WithShard)
	tree         *kdtree.Tree
	ftree        *flat.Tree // SoA copy of tree (LayoutFlat)
	cfg          config
	bw           stats.Bandwidth
	proto        *bounds.Evaluator // nil for MethodExact / MethodZOrder
	sample       geom.Points       // Z-order sample (MethodZOrder)
	sampleWeight float64
	engines      sync.Pool
	tileScratch  sync.Pool    // *renderScratch for tile render workers
	scratchLive  atomic.Int64 // render scratches checked out and not yet returned

	permOnce sync.Once
	perm     []int // lazily-built Z-order permutation for OraclePartial
}

// New builds a KDV instance over a flat row-major coordinate buffer of
// n·dim values. The buffer is copied; the caller's data is not modified.
func New(coords []float64, dim int, opts ...Option) (*KDV, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("quad: dimension must be positive, got %d", dim)
	}
	if len(coords) == 0 {
		return nil, fmt.Errorf("quad: empty dataset")
	}
	if len(coords)%dim != 0 {
		return nil, fmt.Errorf("quad: coordinate buffer length %d is not a multiple of dim %d", len(coords), dim)
	}
	pts := geom.NewPoints(append([]float64(nil), coords...), dim)
	return newKDV(pts, opts)
}

// NewFromPoints builds a KDV instance from a slice of points; all points
// must share one dimensionality.
func NewFromPoints(points [][]float64, opts ...Option) (*KDV, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("quad: empty dataset")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("quad: zero-dimensional points")
	}
	coords := make([]float64, 0, len(points)*dim)
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("quad: point %d has dimension %d, want %d", i, len(p), dim)
		}
		coords = append(coords, p...)
	}
	return newKDV(geom.NewPoints(coords, dim), opts)
}

func newKDV(pts geom.Points, opts []Option) (*KDV, error) {
	cfg := config{
		kern:       Gaussian,
		method:     MethodQuadratic,
		workers:    1,
		zsampleEps: 0.01,
		zdelta:     0.2,
		seedWindow: 0.02,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	k := cfg.kern.internal()
	if !k.Valid() {
		return nil, fmt.Errorf("quad: invalid kernel %d", int(cfg.kern))
	}
	var weights []float64
	if cfg.ptWeights != nil {
		if len(cfg.ptWeights) != pts.Len() {
			return nil, fmt.Errorf("quad: %d point weights for %d points", len(cfg.ptWeights), pts.Len())
		}
		var sum float64
		for i, w := range cfg.ptWeights {
			if w < 0 {
				return nil, fmt.Errorf("quad: negative point weight %g at index %d", w, i)
			}
			sum += w
		}
		if sum <= 0 {
			return nil, fmt.Errorf("quad: point weights sum to %g; need a positive total", sum)
		}
		weights = append([]float64(nil), cfg.ptWeights...)
	}
	var bw stats.Bandwidth
	switch cfg.bwRule {
	case Silverman:
		bw = stats.SilvermanRule(pts, k)
	default:
		bw = stats.ScottsRule(pts, k)
	}
	if cfg.gamma > 0 {
		bw.Gamma = cfg.gamma
	}
	switch {
	case cfg.weight > 0:
		bw.Weight = cfg.weight
	case weights != nil:
		// Normalize by total weight rather than cardinality.
		var sum float64
		for _, w := range weights {
			sum += w
		}
		bw.Weight = 1 / sum
	}

	// Shard restriction happens only after the bandwidth and weight
	// normalization above were fixed from the full dataset, so per-shard
	// densities sum exactly to the full-dataset density (see WithShard).
	var fullRect geom.Rect
	if cfg.sharded {
		var err error
		pts, weights, fullRect, err = applyShard(&cfg, pts, weights)
		if err != nil {
			return nil, err
		}
	}

	kdv := &KDV{pts: pts, weights: weights, fullRect: fullRect, cfg: cfg, bw: bw}
	switch cfg.method {
	case MethodZOrder:
		if weights != nil {
			return nil, fmt.Errorf("quad: MethodZOrder does not support per-point weights")
		}
		sampler, err := zorder.NewSampler(pts)
		if err != nil {
			return nil, err
		}
		m := zorder.SampleSize(cfg.zsampleEps, cfg.zdelta, pts.Len())
		sample, mult := sampler.Sample(m)
		kdv.sample = sample
		kdv.sampleWeight = bw.Weight * mult
	case MethodExact:
		// No index needed.
	default:
		method, err := toBoundsMethod(cfg.method)
		if err != nil {
			return nil, err
		}
		ev, err := bounds.NewEvaluator(k, bw.Gamma, bw.Weight, method, pts.Dim)
		if err != nil {
			return nil, err
		}
		ev.SetBallTightening(cfg.ballBounds)
		tree, err := kdtree.Build(pts, kdtree.Options{LeafSize: cfg.leafSize, Gram: ev.NeedsGram(), Weights: weights})
		if err != nil {
			return nil, err
		}
		kdv.tree = tree
		kdv.proto = ev
		if cfg.layout == LayoutFlat {
			ftree, err := flat.FromTree(tree)
			if err != nil {
				return nil, err
			}
			kdv.ftree = ftree
		}
		// Construct one renderer eagerly so configuration errors surface here
		// rather than on the first query.
		r, err := kdv.newRenderer()
		if err != nil {
			return nil, err
		}
		kdv.engines.Put(r)
	}
	return kdv, nil
}

// newRenderer constructs a render engine of the configured layout.
func (k *KDV) newRenderer() (engine.Renderer, error) {
	if k.cfg.layout == LayoutPointer {
		eng, err := engine.New(k.tree, k.proto.Clone())
		if err != nil {
			return nil, err
		}
		return engine.PointerRenderer{TileEngine: engine.NewTileEngine(eng)}, nil
	}
	feng, err := engine.NewFlat(k.ftree, k.proto.Clone())
	if err != nil {
		return nil, err
	}
	return engine.FlatRenderer{FlatTileEngine: engine.NewFlatTileEngine(feng)}, nil
}

func toBoundsMethod(m Method) (bounds.Method, error) {
	switch m {
	case MethodQuadratic:
		return bounds.Quadratic, nil
	case MethodLinear:
		return bounds.Linear, nil
	case MethodMinMax:
		return bounds.MinMax, nil
	default:
		return 0, fmt.Errorf("quad: method %s has no bound function", m)
	}
}

// Dim returns the dataset's dimensionality.
func (k *KDV) Dim() int { return k.pts.Dim }

// Len returns the dataset's cardinality.
func (k *KDV) Len() int { return k.pts.Len() }

// Gamma returns the kernel's distance-scale parameter in use.
func (k *KDV) Gamma() float64 { return k.bw.Gamma }

// Weight returns the per-point weight in use.
func (k *KDV) Weight() float64 { return k.bw.Weight }

// Bandwidth returns the underlying Scott's-rule bandwidth h (data units).
func (k *KDV) Bandwidth() float64 { return k.bw.H }

// KernelFunc returns the configured kernel.
func (k *KDV) KernelFunc() Kernel { return k.cfg.kern }

// EvalMethod returns the configured method.
func (k *KDV) EvalMethod() Method { return k.cfg.method }
