package quad_test

import (
	"fmt"
	"math/rand"

	quad "github.com/quadkdv/quad"
)

// examplePoints builds a small deterministic cluster around (1, 2).
func examplePoints() [][]float64 {
	rng := rand.New(rand.NewSource(7))
	pts := make([][]float64, 5000)
	for i := range pts {
		pts[i] = []float64{1 + rng.NormFloat64()*0.5, 2 + rng.NormFloat64()*0.5}
	}
	return pts
}

func ExampleNewFromPoints() {
	kdv, err := quad.NewFromPoints(examplePoints())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("points:", kdv.Len())
	fmt.Println("kernel:", kdv.KernelFunc())
	fmt.Println("method:", kdv.EvalMethod())
	// Output:
	// points: 5000
	// kernel: gaussian
	// method: quad
}

func ExampleKDV_Estimate() {
	kdv, err := quad.NewFromPoints(examplePoints())
	if err != nil {
		fmt.Println(err)
		return
	}
	// The cluster center is dense; a far corner is not.
	center, _ := kdv.Estimate([]float64{1, 2}, 0.01)
	far, _ := kdv.Estimate([]float64{8, 8}, 0.01)
	fmt.Println("center is denser:", center > 1000*far)
	// Output:
	// center is denser: true
}

func ExampleKDV_IsHot() {
	kdv, err := quad.NewFromPoints(examplePoints())
	if err != nil {
		fmt.Println(err)
		return
	}
	d, _ := kdv.Density([]float64{1, 2})
	hot, _ := kdv.IsHot([]float64{1, 2}, d/2)
	cold, _ := kdv.IsHot([]float64{1, 2}, d*2)
	fmt.Println(hot, cold)
	// Output:
	// true false
}

func ExampleKDV_RenderEps() {
	kdv, err := quad.NewFromPoints(examplePoints())
	if err != nil {
		fmt.Println(err)
		return
	}
	dm, err := kdv.RenderEps(quad.Resolution{W: 64, H: 48}, 0.01)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("pixels:", len(dm.Values))
	mu, _ := dm.MuSigma()
	fmt.Println("positive mean density:", mu > 0)
	// Output:
	// pixels: 3072
	// positive mean density: true
}

func ExampleNewClassifier() {
	rng := rand.New(rand.NewSource(9))
	classes := map[string][][]float64{}
	for label, cx := range map[string]float64{"west": 0, "east": 10} {
		pts := make([][]float64, 2000)
		for i := range pts {
			pts[i] = []float64{cx + rng.NormFloat64(), rng.NormFloat64()}
		}
		classes[label] = pts
	}
	clf, err := quad.NewClassifier(classes, quad.Gaussian, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	a, _ := clf.Classify([]float64{0, 0})
	b, _ := clf.Classify([]float64{10, 0})
	fmt.Println(a, b)
	// Output:
	// west east
}

func ExampleNewRegressor() {
	rng := rand.New(rand.NewSource(11))
	// y = 2x with noise.
	x := make([][]float64, 3000)
	y := make([]float64, 3000)
	for i := range x {
		v := rng.Float64() * 10
		x[i] = []float64{v}
		y[i] = 2*v + rng.NormFloat64()*0.1
	}
	reg, err := quad.NewRegressor(x, y, quad.Gaussian, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	pred, ok, _ := reg.Predict([]float64{5}, 1e-4)
	fmt.Println("defined:", ok)
	fmt.Println("close to 10:", pred > 9.5 && pred < 10.5)
	// Output:
	// defined: true
	// close to 10: true
}
