package quad

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/quadkdv/quad/internal/dataset"
)

// slowTiledKDV builds a KDV whose tile-shared renders are slow enough to
// cancel mid-tile: MinMax bounds (the loosest, so refinement is deep) over
// a large crime analogue, with tiles so large that the raster decomposes
// into exactly one tile per worker — between-tile polling alone could then
// only observe cancellation after a worker finishes its whole tile.
func slowTiledKDV(t *testing.T, n, tile, workers int, opts ...Option) *KDV {
	t.Helper()
	pts, err := dataset.Generate("crime", n, 3)
	if err != nil {
		t.Fatal(err)
	}
	k, err := New(pts.Coords, pts.Dim,
		append([]Option{
			WithMethod(MethodMinMax),
			WithTileSize(tile),
			WithWorkers(workers),
		}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (small slack for runtime helpers), failing after a deadline.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= base+1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline: %d now, %d before", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRenderCancelMidTileNoLeak is the tile-shared analogue of the scan
// path's cancellation test: with one 64×64 tile per worker, a prompt return
// is only possible if workers poll ctx inside tiles. The KDV's counting
// pool (scratchLive) then proves every worker returned its pooled scratch —
// the resource-leak half of the guarantee.
func TestRenderCancelMidTileNoLeak(t *testing.T) {
	k := slowTiledKDV(t, 20000, 64, 4)
	res := Resolution{W: 128, H: 128}
	const eps = 0.001

	start := time.Now()
	if _, err := k.RenderEps(res, eps); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)
	if live := k.scratchLive.Load(); live != 0 {
		t.Fatalf("after full render: %d render scratches still checked out", live)
	}
	if full < 30*time.Millisecond {
		t.Skipf("full render too fast to measure mid-tile cancellation (%s)", full)
	}

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(full / 20)
		cancel()
	}()
	start = time.Now()
	dm, err := k.RenderEpsCtx(ctx, res, eps)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if dm != nil {
		t.Error("cancelled render returned a map")
	}
	if elapsed > full/2 {
		t.Errorf("cancelled render took %s of a %s render — tile interior did not poll ctx", elapsed, full)
	}
	if live := k.scratchLive.Load(); live != 0 {
		t.Errorf("after cancelled render: %d render scratches still checked out", live)
	}
	waitGoroutines(t, base)
}

// TestRenderTauCancelMidTileNoLeak covers the τKDV tile runner: cancelled
// mid-render it must return ctx.Err(), return all pooled scratch, and leave
// no worker goroutines behind.
func TestRenderTauCancelMidTileNoLeak(t *testing.T) {
	k := slowTiledKDV(t, 20000, 64, 4)
	res := Resolution{W: 128, H: 128}

	// A τ near the raster's interior density keeps most tiles undecided, so
	// per-pixel refinement (the cancellable part) dominates.
	mid, err := k.Density([]float64{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := k.RenderTau(res, mid); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)
	if full < 30*time.Millisecond {
		t.Skipf("full render too fast to measure mid-tile cancellation (%s)", full)
	}

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(full / 20)
		cancel()
	}()
	hm, err := k.RenderTauCtx(ctx, res, mid)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if hm != nil {
		t.Error("cancelled render returned a map")
	}
	if live := k.scratchLive.Load(); live != 0 {
		t.Errorf("after cancelled render: %d render scratches still checked out", live)
	}
	waitGoroutines(t, base)
}

// TestRenderCancelMidTileBothLayouts re-runs the mid-tile cancellation
// guarantee against each engine layout explicitly: the flat engine's batched
// refinement loops must reach the same between-(sub-)tile poll points the
// pointer engine does, and both must return every pooled scratch. (The
// unsuffixed tests above already cover the default layout; this pins the
// contract to the option so a future layout cannot silently drop polling.)
func TestRenderCancelMidTileBothLayouts(t *testing.T) {
	for _, tc := range []struct {
		name   string
		layout EngineLayout
	}{
		{"flat", LayoutFlat},
		{"pointer", LayoutPointer},
	} {
		t.Run(tc.name, func(t *testing.T) {
			k := slowTiledKDV(t, 20000, 64, 4, WithEngineLayout(tc.layout))
			res := Resolution{W: 128, H: 128}
			const eps = 0.001

			start := time.Now()
			if _, err := k.RenderEps(res, eps); err != nil {
				t.Fatal(err)
			}
			full := time.Since(start)
			if live := k.scratchLive.Load(); live != 0 {
				t.Fatalf("after full render: %d render scratches still checked out", live)
			}
			if full < 30*time.Millisecond {
				t.Skipf("full render too fast to measure mid-tile cancellation (%s)", full)
			}

			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(full / 20)
				cancel()
			}()
			start = time.Now()
			dm, err := k.RenderEpsCtx(ctx, res, eps)
			elapsed := time.Since(start)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if dm != nil {
				t.Error("cancelled render returned a map")
			}
			if elapsed > full/2 {
				t.Errorf("cancelled render took %s of a %s render — tile interior did not poll ctx", elapsed, full)
			}
			if live := k.scratchLive.Load(); live != 0 {
				t.Errorf("after cancelled render: %d render scratches still checked out", live)
			}
		})
	}
}
