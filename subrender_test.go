package quad

import (
	"context"
	"math"
	"testing"

	"github.com/quadkdv/quad/internal/dataset"
)

// buildSubTestKDV builds a small crime-analogue KDV for the sub-render
// identity tests.
func buildSubTestKDV(t *testing.T, opts ...Option) *KDV {
	t.Helper()
	pts, err := dataset.Generate("crime", 1200, 7)
	if err != nil {
		t.Fatal(err)
	}
	pts = dataset.First2D(pts)
	k, err := New(pts.Coords, pts.Dim, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestRenderEpsSubIdentity asserts the sub-rect render contract: an aligned
// sub-rectangle of the conceptual raster is bit-identical to the same crop
// of the full render, for the tile-shared default and for a per-pixel
// build, under the default window and an explicit one.
func TestRenderEpsSubIdentity(t *testing.T) {
	const eps = 0.05
	full := Resolution{W: 64, H: 64}
	for _, tc := range []struct {
		name string
		opts []Option
		win  Window
	}{
		{"tiled/default-window", nil, Window{}},
		{"perpixel/default-window", []Option{WithTileSize(1)}, Window{}},
		{"tiled/explicit-window", nil, Window{MinX: -1, MinY: -2, MaxX: 3, MaxY: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			k := buildSubTestKDV(t, tc.opts...)
			ref, err := k.RenderEpsInCtx(context.Background(), full, eps, tc.win)
			if err != nil {
				t.Fatal(err)
			}
			// 16-aligned quadrants plus an inner aligned block.
			for _, sub := range []PixelRect{
				{0, 0, 32, 32}, {32, 0, 64, 32}, {0, 32, 32, 64}, {32, 32, 64, 64},
				{16, 16, 48, 48},
			} {
				dm, err := k.RenderEpsSubInCtx(context.Background(), full, eps, tc.win, sub)
				if err != nil {
					t.Fatal(err)
				}
				if dm.Res.W != sub.W() || dm.Res.H != sub.H() {
					t.Fatalf("sub render %v: got %v", sub, dm.Res)
				}
				for y := 0; y < sub.H(); y++ {
					for x := 0; x < sub.W(); x++ {
						got := dm.At(x, y)
						want := ref.At(sub.X0+x, sub.Y0+y)
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Fatalf("sub %v pixel (%d,%d): %.17g != full render %.17g",
								sub, x, y, got, want)
						}
					}
				}
			}
		})
	}
}

// TestSubGridQueryIdentity asserts the grid-level property underneath the
// render identity: a sub-view's query points are bit-identical to the
// parent's at the offset pixel — for every offset, aligned or not.
func TestSubGridQueryIdentity(t *testing.T) {
	k := buildSubTestKDV(t)
	full := Resolution{W: 40, H: 30}
	g, err := k.newGridIn(full, Window{})
	if err != nil {
		t.Fatal(err)
	}
	sub := PixelRect{X0: 7, Y0: 11, X1: 23, Y1: 28}
	sg, err := subGridFor(k, full, Window{}, sub)
	if err != nil {
		t.Fatal(err)
	}
	q, qs := make([]float64, 2), make([]float64, 2)
	for y := 0; y < sub.H(); y++ {
		for x := 0; x < sub.W(); x++ {
			g.Query(sub.X0+x, sub.Y0+y, q)
			sg.Query(x, y, qs)
			if math.Float64bits(q[0]) != math.Float64bits(qs[0]) ||
				math.Float64bits(q[1]) != math.Float64bits(qs[1]) {
				t.Fatalf("query (%d,%d): sub %v != parent %v", x, y, qs, q)
			}
		}
	}
}

// TestRenderEpsSubValidation exercises the error paths: out-of-range and
// degenerate rects must be rejected, not rendered.
func TestRenderEpsSubValidation(t *testing.T) {
	k := buildSubTestKDV(t)
	full := Resolution{W: 32, H: 32}
	for _, sub := range []PixelRect{
		{0, 0, 0, 16},    // degenerate
		{-1, 0, 16, 16},  // negative origin
		{16, 16, 40, 32}, // past the right edge
		{0, 16, 16, 48},  // past the top edge
	} {
		if _, err := k.RenderEpsSubInCtx(context.Background(), full, 0.05, Window{}, sub); err == nil {
			t.Fatalf("sub %v: expected error", sub)
		}
	}
	if _, err := k.RenderEpsSubInCtx(context.Background(), full, -1, Window{}, PixelRect{0, 0, 16, 16}); err == nil {
		t.Fatal("negative eps: expected error")
	}
}

// TestDefaultWindow asserts DefaultWindow matches the window a zero-Window
// render reports.
func TestDefaultWindow(t *testing.T) {
	k := buildSubTestKDV(t)
	win, err := k.DefaultWindow()
	if err != nil {
		t.Fatal(err)
	}
	dm, err := k.RenderEps(Resolution{W: 8, H: 8}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if win.MinX != dm.WindowMin[0] || win.MinY != dm.WindowMin[1] ||
		win.MaxX != dm.WindowMax[0] || win.MaxY != dm.WindowMax[1] {
		t.Fatalf("DefaultWindow %+v != render window %v..%v", win, dm.WindowMin, dm.WindowMax)
	}
}
