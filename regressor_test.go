package quad

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewRegressorValidation(t *testing.T) {
	if _, err := NewRegressor(nil, nil, Gaussian, 0); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := NewRegressor([][]float64{{}}, []float64{1}, Gaussian, 0); err == nil {
		t.Error("zero-dim features accepted")
	}
	if _, err := NewRegressor([][]float64{{1}, {2, 3}}, []float64{1, 2}, Gaussian, 0); err == nil {
		t.Error("ragged features accepted")
	}
	if _, err := NewRegressor([][]float64{{1}}, []float64{1, 2}, Gaussian, 0); err == nil {
		t.Error("response length mismatch accepted")
	}
	if _, err := NewRegressor([][]float64{{1}, {2}}, []float64{1, 2}, Gaussian, 0, WithMethod(MethodExact)); err == nil {
		t.Error("exact method accepted (regressor needs bounds)")
	}
}

func TestRegressorEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(180))
	// 2-d regression surface z = x − y with noise.
	n := 4000
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a, b := rng.Float64()*4, rng.Float64()*4
		x[i] = []float64{a, b}
		y[i] = a - b + rng.NormFloat64()*0.05
	}
	r, err := NewRegressor(x, y, Gaussian, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dim() != 2 {
		t.Errorf("Dim = %d", r.Dim())
	}
	for trial := 0; trial < 15; trial++ {
		a, b := 0.5+rng.Float64()*3, 0.5+rng.Float64()*3
		got, ok, err := r.Predict([]float64{a, b}, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("prediction undefined at (%g, %g)", a, b)
		}
		if math.Abs(got-(a-b)) > 0.25 {
			t.Errorf("Predict(%g, %g) = %g, want ≈ %g", a, b, got, a-b)
		}
	}
	if _, _, err := r.Predict([]float64{1}, 1e-3); err == nil {
		t.Error("wrong-dim query accepted")
	}
}

func TestRegressorScottGammaDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	x := make([][]float64, 500)
	y := make([]float64, 500)
	for i := range x {
		x[i] = []float64{rng.NormFloat64()}
		y[i] = 3
	}
	r, err := NewRegressor(x, y, Gaussian, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, _ := r.Predict([]float64{0}, 1e-6)
	if !ok || math.Abs(got-3) > 1e-4 {
		t.Errorf("constant regression = %g (ok=%v), want 3", got, ok)
	}
}
