package quad

import (
	"math/rand"
	"testing"
)

func labeledBlobs(rng *rand.Rand, n int) map[string][][]float64 {
	mk := func(cx, cy float64) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			out[i] = []float64{cx + rng.NormFloat64(), cy + rng.NormFloat64()}
		}
		return out
	}
	return map[string][][]float64{"hot": mk(0, 0), "cold": mk(7, 7)}
}

func TestNewClassifierValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	if _, err := NewClassifier(nil, Gaussian, 0); err == nil {
		t.Error("no classes accepted")
	}
	classes := labeledBlobs(rng, 50)
	classes["bad"] = [][]float64{}
	if _, err := NewClassifier(classes, Gaussian, 0); err == nil {
		t.Error("empty class accepted")
	}
	delete(classes, "bad")
	classes["ragged"] = [][]float64{{1, 2, 3}}
	if _, err := NewClassifier(classes, Gaussian, 0); err == nil {
		t.Error("mixed dims accepted")
	}
	delete(classes, "ragged")
	if _, err := NewClassifier(classes, Gaussian, 0, WithMethod(MethodExact)); err == nil {
		t.Error("exact method accepted (classifier needs bounds)")
	}
}

func TestClassifierEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	c, err := NewClassifier(labeledBlobs(rng, 500), Gaussian, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Labels(); len(got) != 2 || got[0] != "cold" || got[1] != "hot" {
		t.Fatalf("Labels = %v", got)
	}
	cases := []struct {
		q    []float64
		want string
	}{
		{[]float64{0, 0}, "hot"},
		{[]float64{7, 7}, "cold"},
		{[]float64{-1, 1}, "hot"},
		{[]float64{8, 6}, "cold"},
	}
	for _, tc := range cases {
		got, err := c.Classify(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Classify(%v) = %s, want %s", tc.q, got, tc.want)
		}
	}
	dens, err := c.ClassDensities([]float64{0, 0}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if dens["hot"] <= dens["cold"] {
		t.Errorf("densities at hot center: %v", dens)
	}
	if _, err := c.Classify([]float64{1}); err == nil {
		t.Error("wrong-dim query accepted")
	}
}

func TestClassifierExplicitGammaAndKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	c, err := NewClassifier(labeledBlobs(rng, 300), Triangular, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Classify([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != "hot" {
		t.Errorf("triangular-kernel classify = %s", got)
	}
}
