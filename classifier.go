package quad

import (
	"fmt"

	"github.com/quadkdv/quad/internal/classify"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/kernel"
	"github.com/quadkdv/quad/internal/stats"
)

// Classifier assigns query points to the class with the highest
// prior-scaled kernel density — kernel density classification, the task
// behind tKDC and one of the kernel-based machine-learning extensions the
// QUAD paper points to. Classification races the classes' density bounds
// and stops as soon as one class provably dominates, so it typically costs
// a small fraction of computing any density exactly.
type Classifier struct {
	impl *classify.Classifier
}

// NewClassifier builds a kernel density classifier from labeled training
// points. All classes share one kernel and one γ (taken from Scott's rule
// over the pooled data unless gamma > 0), so their densities are
// commensurable; each class is weighted by its empirical prior n_c/n.
func NewClassifier(classes map[string][][]float64, kern Kernel, gamma float64, opts ...Option) (*Classifier, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("quad: no classes")
	}
	cfg := config{method: MethodQuadratic}
	for _, o := range opts {
		o(&cfg)
	}
	method, err := toBoundsMethod(cfg.method)
	if err != nil {
		return nil, fmt.Errorf("quad: classifier requires a bound-based method: %w", err)
	}
	internalClasses := make(map[string]geom.Points, len(classes))
	var pooled []float64
	dim := 0
	for label, pts := range classes {
		if len(pts) == 0 {
			return nil, fmt.Errorf("quad: class %q is empty", label)
		}
		if dim == 0 {
			dim = len(pts[0])
		}
		coords := make([]float64, 0, len(pts)*dim)
		for i, p := range pts {
			if len(p) != dim {
				return nil, fmt.Errorf("quad: class %q point %d has dim %d, want %d", label, i, len(p), dim)
			}
			coords = append(coords, p...)
		}
		internalClasses[label] = geom.NewPoints(coords, dim)
		pooled = append(pooled, coords...)
	}
	if gamma <= 0 {
		bw := stats.ScottsRule(geom.NewPoints(pooled, dim), kern.internal())
		gamma = bw.Gamma
	}
	impl, err := classify.New(internalClasses, classify.Config{
		Kernel:   kernel.Kernel(kern),
		Gamma:    gamma,
		Method:   method,
		LeafSize: cfg.leafSize,
	})
	if err != nil {
		return nil, err
	}
	return &Classifier{impl: impl}, nil
}

// Labels returns the class labels in sorted order.
func (c *Classifier) Labels() []string { return c.impl.Labels() }

// Classify returns the label of the class with the highest prior-scaled
// density at q. Safe for concurrent use.
func (c *Classifier) Classify(q []float64) (string, error) {
	res, err := c.impl.Classify(q)
	if err != nil {
		return "", err
	}
	return res.Label, nil
}

// ClassDensities returns each class's prior-scaled density at q to relative
// error ε — useful for calibration or soft decisions.
func (c *Classifier) ClassDensities(q []float64, eps float64) (map[string]float64, error) {
	return c.impl.Densities(q, eps)
}
