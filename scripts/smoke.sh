#!/bin/sh
# Smoke test of the serving stack: boot kdvserve, wait for /readyz to flip
# green, render once, and assert /metrics recorded the work. Exercises the
# telemetry path end to end on a real listener, which unit tests cannot.
set -eu

ADDR="${SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/kdvserve"
LOG="$(mktemp)"

cleanup() {
    [ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null || true
    [ -n "${SRV_PID:-}" ] && wait "$SRV_PID" 2>/dev/null || true
    rm -f "$BIN" "$LOG"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/kdvserve
"$BIN" -addr "$ADDR" -n 3000 -slow-query 1ns >"$LOG" 2>&1 &
SRV_PID=$!

# Readiness must flip to 200 once the warmup build lands.
ready=""
for _ in $(seq 1 120); do
    code="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz" || true)"
    if [ "$code" = 200 ]; then ready=1; break; fi
    kill -0 "$SRV_PID" 2>/dev/null || { echo "smoke: kdvserve died"; cat "$LOG"; exit 1; }
    sleep 0.5
done
[ -n "$ready" ] || { echo "smoke: /readyz never reached 200"; cat "$LOG"; exit 1; }
echo "smoke: /readyz ready"

# One render; the default-parameter request must hit the warmup build.
curl -sf "$BASE/render?dataset=crime&res=64x48&eps=0.05" -o /dev/null \
    || { echo "smoke: /render failed"; cat "$LOG"; exit 1; }
echo "smoke: /render ok"

METRICS="$(curl -sf "$BASE/metrics")"
echo "$METRICS" | grep -q 'kdv_render_requests_total{endpoint="render",outcome="ok"} [1-9]' \
    || { echo "smoke: kdv_render_requests_total not incremented"; echo "$METRICS" | head -40; exit 1; }
echo "$METRICS" | grep -q 'kdv_cache_hits_total [1-9]' \
    || { echo "smoke: render did not hit the warmup cache"; exit 1; }
echo "$METRICS" | grep -q '^kdv_ready 1$' \
    || { echo "smoke: kdv_ready gauge not set"; exit 1; }
echo "smoke: /metrics recorded the render"

# The slow-query log (threshold 1ns) must have captured it, with stats.
grep -q '"path":"/render"' "$LOG" \
    || { echo "smoke: slow-query log missing /render entry"; cat "$LOG"; exit 1; }
echo "smoke: slow-query log populated"

echo "smoke: PASS"
