#!/bin/sh
# Smoke test of the serving stack: boot kdvserve, wait for /readyz to flip
# green, render once, and assert /metrics recorded the work. Exercises the
# telemetry path end to end on a real listener, which unit tests cannot.
# A second pass exercises the tracing path: a render carrying a W3C
# traceparent must surface its trace ID in the exported span log, and
# /debug/workmap must serve a work-map PNG. Diagnostic artifacts (trace
# JSON, work-map PNG) land in SMOKE_ARTIFACTS when set, so CI can upload
# them. A tile pass drives the /tiles pyramid through its three serving
# tiers: first fetch builds (miss), replay hits memory, a conditional GET
# with the ETag answers 304, and a server restart over the same -tiles-dir
# serves the identical bytes from disk without rebuilding. A final pass
# boots a coordinator + two shard workers, kills one, and asserts the
# render degrades to a 200 partial raster flagged X-KDV-Complete: false /
# X-KDV-Shards: 1/2.
set -eu

ADDR="${SMOKE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/kdvserve"
LOG="$(mktemp)"
ART="${SMOKE_ARTIFACTS:-$(mktemp -d)}"
TILES="$(mktemp -d)"
mkdir -p "$ART"

cleanup() {
    for pid in "${SRV_PID:-}" "${W1_PID:-}" "${W2_PID:-}" "${CO_PID:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    for pid in "${SRV_PID:-}" "${W1_PID:-}" "${W2_PID:-}" "${CO_PID:-}"; do
        [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    done
    rm -f "$BIN" "$LOG"
    rm -rf "$TILES"
}
trap cleanup EXIT INT TERM

go build -o "$BIN" ./cmd/kdvserve
"$BIN" -addr "$ADDR" -n 3000 -slow-query 1ns -enable-workmap \
    -tiles-dir "$TILES" -tile-size 128 -audit-fraction 1 \
    -trace-log "$ART/serve.trace.jsonl" >"$LOG" 2>&1 &
SRV_PID=$!

# Readiness must flip to 200 once the warmup build lands.
ready=""
for _ in $(seq 1 120); do
    code="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz" || true)"
    if [ "$code" = 200 ]; then ready=1; break; fi
    kill -0 "$SRV_PID" 2>/dev/null || { echo "smoke: kdvserve died"; cat "$LOG"; exit 1; }
    sleep 0.5
done
[ -n "$ready" ] || { echo "smoke: /readyz never reached 200"; cat "$LOG"; exit 1; }
echo "smoke: /readyz ready"

# One render; the default-parameter request must hit the warmup build.
curl -sf "$BASE/render?dataset=crime&res=64x48&eps=0.05" -o /dev/null \
    || { echo "smoke: /render failed"; cat "$LOG"; exit 1; }
echo "smoke: /render ok"

METRICS="$(curl -sf "$BASE/metrics")"
echo "$METRICS" | grep -q 'kdv_render_requests_total{endpoint="render",outcome="ok"} [1-9]' \
    || { echo "smoke: kdv_render_requests_total not incremented"; echo "$METRICS" | head -40; exit 1; }
echo "$METRICS" | grep -q 'kdv_cache_hits_total [1-9]' \
    || { echo "smoke: render did not hit the warmup cache"; exit 1; }
echo "$METRICS" | grep -q '^kdv_ready 1$' \
    || { echo "smoke: kdv_ready gauge not set"; exit 1; }
echo "smoke: /metrics recorded the render"

# Shadow audit (fraction 1 above): the async auditor must recompute pixels
# of the render against the exact oracle, and on honest code it must find
# zero violations. The audit runs off the request path, so poll briefly.
audited=""
for _ in $(seq 1 60); do
    if curl -sf "$BASE/metrics" | grep -q 'kdv_audit_checks_total{endpoint="render"} [1-9]'; then
        audited=1; break
    fi
    sleep 0.5
done
[ -n "$audited" ] || { echo "smoke: audit never checked the render"; curl -sf "$BASE/metrics" | grep kdv_audit; cat "$LOG"; exit 1; }
if curl -sf "$BASE/metrics" | grep '^kdv_audit_violations_total' | grep -qv ' 0$'; then
    echo "smoke: audit found guarantee violations:"
    curl -sf "$BASE/metrics" | grep kdv_audit
    exit 1
fi
echo "smoke: shadow audit checked the render, zero violations"

# /debug/ops must answer one parseable JSON snapshot naming the default
# dataset and carrying the audit and SLO blocks.
curl -sf "$BASE/debug/ops" -o "$ART/ops.json" \
    || { echo "smoke: /debug/ops failed"; cat "$LOG"; exit 1; }
python3 - "$ART/ops.json" <<'PYEOF' \
    || { echo "smoke: /debug/ops snapshot malformed"; cat "$ART/ops.json"; exit 1; }
import json, sys
ops = json.load(open(sys.argv[1]))
assert ops["default_dataset"] == "crime", ops.get("default_dataset")
assert "crime" in ops["datasets"], ops.get("datasets")
assert ops["audit"]["checks"] >= 1, ops["audit"]
assert ops["audit"]["violations"] == 0, ops["audit"]
assert ops["slo"], "missing slo block"
names = {o["name"] for o in ops["slo"]}
assert {"availability", "latency", "accuracy"} <= names, names
PYEOF
echo "smoke: /debug/ops snapshot parseable with audit + SLO blocks"

# The slow-query log (threshold 1ns) must have captured it, with stats.
grep -q '"path":"/render"' "$LOG" \
    || { echo "smoke: slow-query log missing /render entry"; cat "$LOG"; exit 1; }
echo "smoke: slow-query log populated"

# Traced render: a request carrying a W3C traceparent must keep its trace
# ID end to end — on the response header and in the exported span log.
TID="4bf92f3577b34da6a3ce929d0e0e4736"
GOT_TID="$(curl -sf -D - -o /dev/null \
    -H "traceparent: 00-$TID-00f067aa0ba902b7-01" \
    "$BASE/render?dataset=crime&res=64x48&eps=0.05" \
    | tr -d '\r' | sed -n 's/^X-Trace-ID: //ip')"
[ "$GOT_TID" = "$TID" ] \
    || { echo "smoke: X-Trace-ID '$GOT_TID' != propagated '$TID'"; cat "$LOG"; exit 1; }
grep -q "\"trace_id\":\"$TID\"" "$ART/serve.trace.jsonl" \
    || { echo "smoke: trace log missing spans for $TID"; cat "$ART/serve.trace.jsonl"; exit 1; }
grep "\"trace_id\":\"$TID\"" "$ART/serve.trace.jsonl" | grep -q '"name":"render.eps"' \
    || { echo "smoke: no render.eps span exported under $TID"; exit 1; }
echo "smoke: traced render propagated $TID into the span log"

# Work-map endpoint (enabled above) must answer with a PNG.
curl -sf "$BASE/debug/workmap?dataset=crime&res=64x48&eps=0.05&layer=evals" \
    -o "$ART/serve.workmap.png" \
    || { echo "smoke: /debug/workmap failed"; cat "$LOG"; exit 1; }
file_sig="$(head -c 4 "$ART/serve.workmap.png" | od -An -tx1 | tr -d ' \n')"
[ "$file_sig" = "89504e47" ] \
    || { echo "smoke: /debug/workmap did not return a PNG"; exit 1; }
echo "smoke: /debug/workmap served a work-map PNG"

# CLI artifacts: one traced render with a work map; the trace must be a
# Chrome trace-event file Perfetto can load (a JSON object with
# traceEvents), the work map a PNG.
go run ./cmd/kdvrender -gen crime -n 3000 -res 128x96 \
    -o "$ART/render.png" -workmap evals -trace "$ART/render.trace.json" 2>/dev/null \
    || { echo "smoke: kdvrender -workmap -trace failed"; exit 1; }
grep -q '"traceEvents"' "$ART/render.trace.json" \
    || { echo "smoke: render trace is not Chrome trace-event JSON"; exit 1; }
grep -q '"render.eps"' "$ART/render.trace.json" \
    || { echo "smoke: render trace missing the render.eps span"; exit 1; }
[ -s "$ART/render.workmap.png" ] \
    || { echo "smoke: kdvrender work-map PNG missing"; exit 1; }
echo "smoke: kdvrender artifacts written to $ART"

# Tile pyramid scenario: the three serving tiers and the HTTP caching
# contract, end to end over the real disk store.
TILE_URL="$BASE/tiles/crime/1/0/0.png?eps=0.05"

# First fetch is a miss: the tile is built through the engine.
H1="$(curl -sf -D - -o "$ART/tile.png" "$TILE_URL" | tr -d '\r')" \
    || { echo "smoke: tile fetch failed"; cat "$LOG"; exit 1; }
tile_sig="$(head -c 4 "$ART/tile.png" | od -An -tx1 | tr -d ' \n')"
[ "$tile_sig" = "89504e47" ] \
    || { echo "smoke: /tiles did not return a PNG"; exit 1; }
ETAG="$(echo "$H1" | sed -n 's/^ETag: //Ip')"
[ -n "$ETAG" ] || { echo "smoke: tile response missing ETag"; echo "$H1"; exit 1; }
SRC1="$(echo "$H1" | sed -n 's/^X-KDV-Tile-Source: //Ip')"
case "$SRC1" in build|coalesced) ;; *)
    echo "smoke: first tile fetch source '$SRC1', want build"; exit 1 ;;
esac
echo "smoke: tile miss built ($SRC1, ETag $ETAG)"

# Replay is a memory hit with the same validator.
H2="$(curl -sf -D - -o /dev/null "$TILE_URL" | tr -d '\r')"
echo "$H2" | grep -qi '^X-KDV-Tile-Source: memory$' \
    || { echo "smoke: replay not served from memory"; echo "$H2"; exit 1; }
[ "$(echo "$H2" | sed -n 's/^ETag: //Ip')" = "$ETAG" ] \
    || { echo "smoke: replay changed the ETag"; exit 1; }
echo "smoke: tile replay hit memory"

# Conditional GET with the current validator: 304, no body.
CODE="$(curl -s -o "$ART/tile304.body" -w '%{http_code}' \
    -H "If-None-Match: $ETAG" "$TILE_URL")"
[ "$CODE" = 304 ] || { echo "smoke: If-None-Match answered $CODE, want 304"; exit 1; }
[ ! -s "$ART/tile304.body" ] || { echo "smoke: 304 carried a body"; exit 1; }
echo "smoke: conditional GET answered 304"

curl -sf "$BASE/metrics" | grep -q 'kdv_tiles_hits_total{level="memory"} [1-9]' \
    || { echo "smoke: kdv_tiles_hits_total not incremented"; exit 1; }

# Restart over the same -tiles-dir: the tile must come back from the disk
# store byte-identical (same content-derived ETag), not from a rebuild.
kill "$SRV_PID" && wait "$SRV_PID" 2>/dev/null || true
"$BIN" -addr "$ADDR" -n 3000 -tiles-dir "$TILES" -tile-size 128 >"$LOG" 2>&1 &
SRV_PID=$!
ready=""
for _ in $(seq 1 120); do
    code="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz" || true)"
    if [ "$code" = 200 ]; then ready=1; break; fi
    kill -0 "$SRV_PID" 2>/dev/null || { echo "smoke: restarted kdvserve died"; cat "$LOG"; exit 1; }
    sleep 0.5
done
[ -n "$ready" ] || { echo "smoke: restarted server never became ready"; cat "$LOG"; exit 1; }
H3="$(curl -sf -D - -o /dev/null "$TILE_URL" | tr -d '\r')" \
    || { echo "smoke: tile fetch after restart failed"; cat "$LOG"; exit 1; }
echo "$H3" | grep -qi '^X-KDV-Tile-Source: disk$' \
    || { echo "smoke: restarted tile not served from disk"; echo "$H3"; cat "$LOG"; exit 1; }
[ "$(echo "$H3" | sed -n 's/^ETag: //Ip')" = "$ETAG" ] \
    || { echo "smoke: ETag changed across restart"; echo "$H3"; exit 1; }
echo "smoke: restart served the tile from disk with a stable ETag"

# Scale-out scenario: a coordinator fanning /render out over two shard
# workers must answer complete while both live, then degrade — 200 with a
# partial raster and the degraded headers — when one worker is killed.
W1="${SMOKE_W1_ADDR:-127.0.0.1:18091}"
W2="${SMOKE_W2_ADDR:-127.0.0.1:18092}"
CADDR="${SMOKE_COORD_ADDR:-127.0.0.1:18090}"
CBASE="http://$CADDR"

"$BIN" -worker -addr "$W1" >>"$LOG" 2>&1 &
W1_PID=$!
"$BIN" -worker -addr "$W2" >>"$LOG" 2>&1 &
W2_PID=$!
"$BIN" -addr "$CADDR" -workers "$W1,$W2" -n 3000 >>"$LOG" 2>&1 &
CO_PID=$!

for host in "$W1" "$W2" "$CADDR"; do
    up=""
    for _ in $(seq 1 120); do
        code="$(curl -s -o /dev/null -w '%{http_code}' "http://$host/healthz" || true)"
        if [ "$code" = 200 ]; then up=1; break; fi
        sleep 0.5
    done
    [ -n "$up" ] || { echo "smoke: $host never answered /healthz"; cat "$LOG"; exit 1; }
done
echo "smoke: coordinator and both workers up"

HDRS="$(curl -sf -D - -o /dev/null "$CBASE/render?dataset=crime&res=32x24&eps=0.05" | tr -d '\r')"
echo "$HDRS" | grep -qi '^X-KDV-Complete: true' \
    || { echo "smoke: 2-worker render not complete"; echo "$HDRS"; cat "$LOG"; exit 1; }
echo "$HDRS" | grep -qi '^X-KDV-Shards: 2/2' \
    || { echo "smoke: 2-worker render shards != 2/2"; echo "$HDRS"; exit 1; }
echo "smoke: sharded render complete across 2 workers"

# Kill worker 2 (shard 1's primary) and wait for its port to die: the next
# render must degrade to the live shard instead of failing.
kill "$W2_PID" 2>/dev/null || true
wait "$W2_PID" 2>/dev/null || true
W2_PID=""

DEG_HDRS="$(curl -sf -D - -o "$ART/partial.png" "$CBASE/render?dataset=crime&res=32x24&eps=0.05" | tr -d '\r')" \
    || { echo "smoke: degraded render did not answer 200"; cat "$LOG"; exit 1; }
echo "$DEG_HDRS" | grep -qi '^X-KDV-Complete: false' \
    || { echo "smoke: degraded render not flagged incomplete"; echo "$DEG_HDRS"; exit 1; }
echo "$DEG_HDRS" | grep -qi '^X-KDV-Shards: 1/2' \
    || { echo "smoke: degraded render shards != 1/2"; echo "$DEG_HDRS"; exit 1; }
part_sig="$(head -c 4 "$ART/partial.png" | od -An -tx1 | tr -d ' \n')"
[ "$part_sig" = "89504e47" ] \
    || { echo "smoke: degraded render is not a PNG"; exit 1; }
echo "smoke: killed worker degraded to a 1/2-shard partial raster"

echo "smoke: PASS"
