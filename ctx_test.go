package quad_test

import (
	"context"
	"errors"
	"testing"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/dataset"
)

// slowKDV builds a KDV whose full-raster renders take long enough that a
// prompt cancellation is clearly distinguishable from running to
// completion (MethodExact: every pixel is an O(n) scan).
func slowKDV(t *testing.T, n int) *quad.KDV {
	t.Helper()
	pts, err := dataset.Generate("crime", n, 1)
	if err != nil {
		t.Fatal(err)
	}
	k, err := quad.New(pts.Coords, pts.Dim, quad.WithMethod(quad.MethodExact))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestRenderEpsCtxCancelPromptly is the acceptance check for the
// cancellable pipeline: cancelling mid-render returns ctx.Err() well
// before full-raster time. The bound is self-calibrating — a full render
// is timed first, then a render cancelled at a small fraction of that time
// must return in well under half of it (one row of work is T/48 here, so
// the margin is wide on both sides).
func TestRenderEpsCtxCancelPromptly(t *testing.T) {
	k := slowKDV(t, 10000)
	res := quad.Resolution{W: 48, H: 48}

	start := time.Now()
	if _, err := k.RenderEps(res, 0.05); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)
	if full < 20*time.Millisecond {
		t.Skipf("full render too fast to measure cancellation (%s)", full)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(full / 20)
		cancel()
	}()
	start = time.Now()
	dm, err := k.RenderEpsCtx(ctx, res, 0.05)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if dm != nil {
		t.Error("cancelled render returned a map")
	}
	if elapsed > full/2 {
		t.Errorf("cancelled render took %s, full render %s — cancellation not prompt", elapsed, full)
	}
}

func TestRenderCtxAlreadyCancelled(t *testing.T) {
	k := slowKDV(t, 2000)
	res := quad.Resolution{W: 16, H: 16}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := k.RenderEpsCtx(ctx, res, 0.05); !errors.Is(err, context.Canceled) {
		t.Errorf("RenderEpsCtx err = %v, want Canceled", err)
	}
	if _, err := k.RenderTauCtx(ctx, res, 0.01); !errors.Is(err, context.Canceled) {
		t.Errorf("RenderTauCtx err = %v, want Canceled", err)
	}
	if _, err := k.RenderProgressiveCtx(ctx, res, 0.05, 0, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("RenderProgressiveCtx err = %v, want Canceled", err)
	}
	if _, _, err := k.ThresholdStatsCtx(ctx, res, 1, 0.05); !errors.Is(err, context.Canceled) {
		t.Errorf("ThresholdStatsCtx err = %v, want Canceled", err)
	}
	if _, err := k.EstimateCtx(ctx, []float64{0, 0}, 0.05); !errors.Is(err, context.Canceled) {
		t.Errorf("EstimateCtx err = %v, want Canceled", err)
	}
	if _, err := k.IsHotCtx(ctx, []float64{0, 0}, 0.01); !errors.Is(err, context.Canceled) {
		t.Errorf("IsHotCtx err = %v, want Canceled", err)
	}
	if _, err := k.RenderProgressiveStreamCtx(ctx, res, 0.05, 0, func(quad.Snapshot) bool { return true }); !errors.Is(err, context.Canceled) {
		t.Errorf("RenderProgressiveStreamCtx err = %v, want Canceled", err)
	}
}

// TestRenderCtxDeadline exercises the deadline form on a multi-worker
// render: an expired deadline must surface as DeadlineExceeded from the
// worker pool.
func TestRenderCtxDeadline(t *testing.T) {
	pts, err := dataset.Generate("crime", 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	k, err := quad.New(pts.Coords, pts.Dim, quad.WithMethod(quad.MethodExact), quad.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = k.RenderEpsCtx(ctx, quad.Resolution{W: 64, H: 64}, 0.05)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestRenderProgressiveWindow verifies the pan/zoom window reaches the
// progressive renderer: run to completion, its raster must be pixel-equal
// to the plain windowed render (identical exact evaluations, different
// order).
func TestRenderProgressiveWindow(t *testing.T) {
	k := slowKDV(t, 2000)
	res := quad.Resolution{W: 24, H: 16}
	win := quad.Window{MinX: 10, MinY: 10, MaxX: 40, MaxY: 40}

	want, err := k.RenderEpsIn(res, 0.05, win)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := k.RenderProgressiveIn(res, 0.05, 0, 0, win)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Complete {
		t.Fatal("unbudgeted progressive render did not complete")
	}
	if pr.Map.WindowMin != want.WindowMin || pr.Map.WindowMax != want.WindowMax {
		t.Errorf("window mismatch: progressive %v..%v, render %v..%v",
			pr.Map.WindowMin, pr.Map.WindowMax, want.WindowMin, want.WindowMax)
	}
	for i := range want.Values {
		if pr.Map.Values[i] != want.Values[i] {
			t.Fatalf("pixel %d: progressive %g, render %g", i, pr.Map.Values[i], want.Values[i])
		}
	}
}

// TestRenderProgressiveCtxBudgetVsCancel pins the two stop conditions
// apart: budget expiry returns a partial result with a nil error,
// cancellation returns ctx.Err() and no result.
func TestRenderProgressiveCtxBudgetVsCancel(t *testing.T) {
	k := slowKDV(t, 10000)
	res := quad.Resolution{W: 48, H: 48}

	pr, err := k.RenderProgressiveCtx(context.Background(), res, 0.05, 30*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Complete {
		t.Skip("budgeted render completed; machine too fast for this check")
	}
	if pr.Evaluated < 1 {
		t.Error("budget expiry returned no evaluated pixels")
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if _, err := k.RenderProgressiveCtx(ctx, res, 0.05, 0, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want Canceled", err)
	}
}
