package quad

import (
	"context"
	"fmt"
	"image"
	"io"
	"time"

	"github.com/quadkdv/quad/internal/engine"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/render"
)

// WorkMapLayer selects one diagnostic raster of a WorkMap.
type WorkMapLayer string

const (
	// WorkMapDepth is the per-pixel refinement depth: priority-queue pops
	// needed to settle the pixel. Bright regions are where the method's
	// bounds are loose.
	WorkMapDepth WorkMapLayer = "depth"
	// WorkMapNodeEvals is the per-pixel bound-function evaluation count —
	// the paper's primary work measure, per pixel instead of aggregated.
	WorkMapNodeEvals WorkMapLayer = "evals"
	// WorkMapGap is the residual bound gap ub−lb each pixel settled at —
	// zero where the classification/estimate was decided with slack, larger
	// where the termination test barely fired. It is the direct image of
	// bound tightness (QUAD's quadratic bounds shrink it fastest).
	WorkMapGap WorkMapLayer = "gap"
)

// WorkMapLayers lists the valid layers in presentation order.
func WorkMapLayers() []WorkMapLayer {
	return []WorkMapLayer{WorkMapDepth, WorkMapNodeEvals, WorkMapGap}
}

// ParseWorkMapLayer parses a layer name.
func ParseWorkMapLayer(s string) (WorkMapLayer, error) {
	switch WorkMapLayer(s) {
	case WorkMapDepth, WorkMapNodeEvals, WorkMapGap:
		return WorkMapLayer(s), nil
	}
	return "", fmt.Errorf("quad: bad work-map layer %q (depth, evals, or gap)", s)
}

// WorkMap is a set of diagnostic rasters recorded alongside a render: for
// every pixel, how hard the bound engine worked to settle it and how tight
// the bounds were when it did. Where a DensityMap shows the data, a WorkMap
// shows the algorithm — the per-pixel view of the paper's Section 7 work
// measurements, and the image that makes bound tightness visible: a QUAD
// work map is dimmer than a KARL or MinMax one over the same data because
// the quadratic bounds settle pixels with fewer evaluations.
//
// Pixels decided wholesale by a shared tile envelope (τKDV Decided tiles)
// record zero depth, zero evaluations, and zero gap — zero per-pixel work
// is exactly what the shared phase bought.
type WorkMap struct {
	Res                  Resolution
	Depth                []float64
	Evals                []float64
	Gap                  []float64
	WindowMin, WindowMax [2]float64
}

func newWorkMap(res Resolution) *WorkMap {
	n := res.W * res.H
	return &WorkMap{
		Res:   res,
		Depth: make([]float64, n),
		Evals: make([]float64, n),
		Gap:   make([]float64, n),
	}
}

// record stores one pixel's settle statistics. Each pixel is written by
// exactly one render worker, so no synchronization is needed (same
// discipline as the value raster).
func (w *WorkMap) record(idx int, st engine.Stats) {
	w.Depth[idx] = float64(st.Iterations)
	w.Evals[idx] = float64(st.NodesEvaluated)
	w.Gap[idx] = st.Gap()
}

// Layer returns the raster of one layer.
func (w *WorkMap) Layer(layer WorkMapLayer) ([]float64, error) {
	switch layer {
	case WorkMapDepth:
		return w.Depth, nil
	case WorkMapNodeEvals:
		return w.Evals, nil
	case WorkMapGap:
		return w.Gap, nil
	}
	return nil, fmt.Errorf("quad: bad work-map layer %q", layer)
}

// Image renders one layer through the heat ramp (log scale — work
// distributions are as skewed as density ones).
func (w *WorkMap) Image(layer WorkMapLayer) (*image.RGBA, error) {
	vals, err := w.Layer(layer)
	if err != nil {
		return nil, err
	}
	v := &grid.Values{Res: grid.Resolution{W: w.Res.W, H: w.Res.H}, Data: vals}
	return render.Heatmap(v, render.Log), nil
}

// EncodePNG writes one layer as a PNG.
func (w *WorkMap) EncodePNG(out io.Writer, layer WorkMapLayer) error {
	img, err := w.Image(layer)
	if err != nil {
		return err
	}
	return render.EncodePNG(out, img)
}

// SavePNG writes one layer as a PNG file.
func (w *WorkMap) SavePNG(path string, layer WorkMapLayer) error {
	img, err := w.Image(layer)
	if err != nil {
		return err
	}
	return render.SavePNG(path, img)
}

// Totals sums the per-pixel layers — cross-checkable against the
// RenderStats counters returned by the same render.
func (w *WorkMap) Totals() (depth, evals int, gap float64) {
	for _, v := range w.Depth {
		depth += int(v)
	}
	for _, v := range w.Evals {
		evals += int(v)
	}
	for _, v := range w.Gap {
		gap += v
	}
	return depth, evals, gap
}

// RenderEpsWorkMap is RenderEpsStats additionally recording the per-pixel
// work-map rasters (see WorkMap).
func (k *KDV) RenderEpsWorkMap(res Resolution, eps float64) (*DensityMap, *WorkMap, RenderStats, error) {
	return k.RenderEpsWorkMapInCtx(context.Background(), res, eps, Window{})
}

// RenderEpsWorkMapInCtx is RenderEpsWorkMap under a context, over an
// explicit window (see RenderEpsInCtx). The work map is the diagnostic
// path: it allocates three full-resolution rasters, so interactive serving
// should keep it behind an explicit gate.
func (k *KDV) RenderEpsWorkMapInCtx(ctx context.Context, res Resolution, eps float64, win Window) (*DensityMap, *WorkMap, RenderStats, error) {
	var st RenderStats
	wm := newWorkMap(res)
	start := time.Now()
	dm, err := k.renderEpsIn(ctx, res, eps, win, &st, wm)
	st.Elapsed = time.Since(start)
	emitRenderSpans(ctx, "render.eps", start, st, err)
	if err != nil {
		return nil, nil, st, err
	}
	wm.WindowMin, wm.WindowMax = dm.WindowMin, dm.WindowMax
	return dm, wm, st, nil
}

// RenderTauWorkMap is RenderTauStats additionally recording the per-pixel
// work-map rasters (see WorkMap).
func (k *KDV) RenderTauWorkMap(res Resolution, tau float64) (*HotspotMap, *WorkMap, RenderStats, error) {
	return k.RenderTauWorkMapInCtx(context.Background(), res, tau, Window{})
}

// RenderTauWorkMapInCtx is RenderTauWorkMap under a context, over an
// explicit window (see RenderTauInCtx).
func (k *KDV) RenderTauWorkMapInCtx(ctx context.Context, res Resolution, tau float64, win Window) (*HotspotMap, *WorkMap, RenderStats, error) {
	var st RenderStats
	wm := newWorkMap(res)
	start := time.Now()
	hm, err := k.renderTauIn(ctx, res, tau, win, &st, wm)
	st.Elapsed = time.Since(start)
	emitRenderSpans(ctx, "render.tau", start, st, err)
	if err != nil {
		return nil, nil, st, err
	}
	wm.WindowMin, wm.WindowMax = hm.WindowMin, hm.WindowMax
	return hm, wm, st, nil
}
