package quad

import (
	"fmt"
	"sort"

	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/oracle"
)

// OraclePartial returns an exact (Kahan-summed) density evaluator over the
// union of the given shard indices of a count-way Z-order partition of this
// KDV's dataset — the ground truth a merged k-of-n fan-out raster must be
// judged against. The partition is exactly WithShard's: same Z-order curve,
// same contiguous range split, same deterministic tie-breaking — so the
// evaluator's value at q equals Σ_i F_{P_i}(q) over the listed shards, the
// quantity a degraded partial merge approximates under the ε guarantee.
//
// The receiver must be an unsharded KDV over the full dataset (the
// coordinator's view); shard indices must be unique-able members of
// [0, count). Listing every shard returns the full-density evaluator. The
// Z-order permutation is computed once per KDV and cached.
//
// The returned evaluator expects Dim()-dimensional queries and is safe for
// concurrent use.
func (k *KDV) OraclePartial(shards []int, count int) (func(q []float64) float64, error) {
	if k.cfg.sharded {
		return nil, fmt.Errorf("quad: OraclePartial requires the unsharded full-dataset KDV")
	}
	n := k.pts.Len()
	if count < 1 || count > n {
		return nil, fmt.Errorf("quad: shard count %d out of range [1, %d]", count, n)
	}
	if k.pts.Dim != 2 {
		return nil, fmt.Errorf("quad: OraclePartial requires a 2-d dataset (Z-order split), got %d-d", k.pts.Dim)
	}
	uniq := append([]int(nil), shards...)
	sort.Ints(uniq)
	dst := 0
	for i, s := range uniq {
		if s < 0 || s >= count {
			return nil, fmt.Errorf("quad: shard index %d out of range [0, %d)", s, count)
		}
		if i > 0 && s == uniq[dst-1] {
			continue
		}
		uniq[dst] = s
		dst++
	}
	uniq = uniq[:dst]

	o := oracle.Oracle{
		Pts:     k.pts,
		Weights: k.weights,
		Kern:    k.cfg.kern.internal(),
		Gamma:   k.bw.Gamma,
		Weight:  k.bw.Weight,
	}
	if len(uniq) == count {
		// Every shard live: the union is the full dataset, no restriction
		// (and no permutation) needed.
		return o.Density, nil
	}

	k.permOnce.Do(func() {
		k.perm = zorderPermutation(k.pts, geom.BoundingRect(k.pts))
	})
	dim := k.pts.Dim
	var coords []float64
	var ws []float64
	for _, s := range uniq {
		lo, hi := shardRange(n, s, count)
		for _, pi := range k.perm[lo:hi] {
			coords = append(coords, k.pts.At(pi)...)
			if k.weights != nil {
				ws = append(ws, k.weights[pi])
			}
		}
	}
	if len(coords) == 0 {
		return func([]float64) float64 { return 0 }, nil
	}
	o.Pts = geom.NewPoints(coords, dim)
	o.Weights = ws
	return o.Density, nil
}
