package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/quadkdv/quad/internal/conformance"
	"github.com/quadkdv/quad/internal/dataset"
)

func tempOut(t *testing.T) *os.File {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "kdvcheck")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestRunSyntheticDataset(t *testing.T) {
	stdout, stderr := tempOut(t), tempOut(t)
	repPath := filepath.Join(t.TempDir(), "report.json")
	code := run([]string{
		"-dataset", "crime", "-n", "400", "-res", "24x18",
		"-kernels", "gaussian,uniform", "-quick", "-json", repPath,
	}, stdout, stderr)
	if code != 0 {
		msg, _ := os.ReadFile(stderr.Name())
		t.Fatalf("exit code %d, stderr: %s", code, msg)
	}
	raw, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep conformance.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !rep.Pass || rep.Passed == 0 || rep.Failed != 0 {
		t.Errorf("report: pass=%v passed=%d failed=%d", rep.Pass, rep.Passed, rep.Failed)
	}
	// Stdout carries the same report.
	raw, err = os.ReadFile(stdout.Name())
	if err != nil {
		t.Fatal(err)
	}
	var rep2 conformance.Report
	if err := json.Unmarshal(raw, &rep2); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
	if rep2.Dataset != "crime" || rep2.N != 400 {
		t.Errorf("stdout report describes %s n=%d", rep2.Dataset, rep2.N)
	}
}

func TestRunCSVInput(t *testing.T) {
	pts := dataset.Crime(300, 5)
	csv := filepath.Join(t.TempDir(), "pts.csv")
	if err := dataset.SaveFile(csv, pts); err != nil {
		t.Fatal(err)
	}
	stdout, stderr := tempOut(t), tempOut(t)
	code := run([]string{
		"-csv", csv, "-res", "20x16", "-quick",
		"-kernels", "gaussian", "-methods", "quad,exact", "-tiles", "1,16",
	}, stdout, stderr)
	if code != 0 {
		msg, _ := os.ReadFile(stderr.Name())
		t.Fatalf("exit code %d, stderr: %s", code, msg)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-res", "bogus"},
		{"-tiles", "a,b"},
		{"-kernels", "nope"},
		{"-methods", "nope"},
		{"-dataset", "nope"},
		{"-csv", filepath.Join(t.TempDir(), "missing.csv")},
	}
	for _, args := range cases {
		stdout, stderr := tempOut(t), tempOut(t)
		if code := run(args, stdout, stderr); code != 2 {
			t.Errorf("args %v: exit code %d, want 2", args, code)
		}
	}
}
