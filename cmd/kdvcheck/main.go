// Command kdvcheck runs the guarantee-conformance suite (internal/conformance)
// against a dataset — a CSV file or a seeded synthetic analogue — and emits a
// JSON report. It exits 0 iff every check passed, so `make verify` and CI can
// gate on it.
//
// Usage:
//
//	kdvcheck -dataset crime -n 1500 -json report.json
//	kdvcheck -csv points.csv -eps 0.01 -kernels gaussian,cosine -quick
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/conformance"
	"github.com/quadkdv/quad/internal/dataset"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/kernel"
	"github.com/quadkdv/quad/internal/logging"
	"github.com/quadkdv/quad/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and without os.Exit, so tests can
// drive it end to end.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("kdvcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		csvPath  = fs.String("csv", "", "CSV dataset to check (2-d rows; overrides -dataset)")
		dsName   = fs.String("dataset", "crime", "synthetic analogue: elnino|crime|home|hep")
		n        = fs.Int("n", 1500, "points to generate for -dataset")
		seed     = fs.Int64("seed", 7, "generator seed for -dataset and query sampling")
		res      = fs.String("res", "40x30", "raster resolution WxH")
		eps      = fs.Float64("eps", 0.05, "εKDV relative-error budget")
		tauSigma = fs.Float64("tau-sigma", 0.5, "τ threshold at μ + tau-sigma·σ of the exact raster")
		tiles    = fs.String("tiles", "1,4,16", "comma-separated tile sizes")
		kernels  = fs.String("kernels", "", "comma-separated kernels (default all)")
		methods  = fs.String("methods", "", "comma-separated methods (default all)")
		workers  = fs.Int("workers", 1, "render workers")
		quick    = fs.Bool("quick", false, "skip the bound-dominance, metamorphic, and shard-merge passes")
		jsonPath = fs.String("json", "", "also write the JSON report to this path")
		pprof    = fs.String("pprof-addr", "", "side listener for net/http/pprof and expvar (empty disables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger := logging.Setup("kdvcheck", stderr)
	if *pprof != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterRuntimeMetrics(reg)
		bound, err := telemetry.StartDebug(*pprof, reg)
		if err != nil {
			logger.Error("pprof listener failed", "error", err)
			return 1
		}
		logger.Info("debug listener up", "addr", bound)
	}

	cfg := conformance.Config{
		Eps:             *eps,
		TauSigma:        *tauSigma,
		Workers:         *workers,
		Seed:            *seed,
		SkipBounds:      *quick,
		SkipMetamorphic: *quick,
		SkipSharding:    *quick,
		FlatQuick:       *quick,
		TileQuick:       *quick,
	}
	var err error
	if cfg.Res, err = parseRes(*res); err != nil {
		return fail(logger, err)
	}
	if cfg.TileSizes, err = parseInts(*tiles); err != nil {
		return fail(logger, fmt.Errorf("bad -tiles: %w", err))
	}
	if cfg.Kernels, err = parseKernels(*kernels); err != nil {
		return fail(logger, err)
	}
	if cfg.Methods, err = parseMethods(*methods); err != nil {
		return fail(logger, err)
	}
	if cfg.Pts, cfg.Name, err = loadPoints(*csvPath, *dsName, *n, *seed); err != nil {
		return fail(logger, err)
	}

	rep, err := conformance.Run(cfg)
	if err != nil {
		return fail(logger, err)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fail(logger, err)
	}
	if *jsonPath != "" {
		if err := writeReport(*jsonPath, rep); err != nil {
			return fail(logger, err)
		}
	}
	if !rep.Pass {
		for _, c := range rep.Failures() {
			logger.Error("check failed", "check", c.Name, "detail", c.Detail)
		}
		logger.Error("conformance suite failed", "failed", rep.Failed, "checks", len(rep.Checks))
		return 1
	}
	logger.Info("conformance suite passed", "passed", rep.Passed, "dataset", rep.Dataset, "n", rep.N)
	return 0
}

func fail(logger *slog.Logger, err error) int {
	logger.Error("fatal", "error", err)
	return 2
}

func loadPoints(csvPath, dsName string, n int, seed int64) (geom.Points, string, error) {
	if csvPath != "" {
		pts, err := dataset.LoadFile(csvPath)
		if err != nil {
			return geom.Points{}, "", err
		}
		if pts.Dim > 2 {
			pts = dataset.First2D(pts)
		}
		return pts, csvPath, nil
	}
	pts, err := dataset.Generate(dsName, n, seed)
	if err != nil {
		return geom.Points{}, "", err
	}
	if pts.Dim > 2 {
		pts = dataset.First2D(pts)
	}
	return pts, dsName, nil
}

func parseRes(s string) (grid.Resolution, error) {
	var r grid.Resolution
	if _, err := fmt.Sscanf(s, "%dx%d", &r.W, &r.H); err != nil {
		return r, fmt.Errorf("bad -res %q (want WxH): %w", s, err)
	}
	return r, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseKernels(s string) ([]kernel.Kernel, error) {
	if s == "" {
		return nil, nil
	}
	var out []kernel.Kernel
	for _, f := range strings.Split(s, ",") {
		k, err := kernel.Parse(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func parseMethods(s string) ([]quad.Method, error) {
	if s == "" {
		return nil, nil
	}
	var out []quad.Method
	for _, f := range strings.Split(s, ",") {
		m, err := quad.ParseMethod(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

func writeReport(path string, rep *conformance.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
