// Command kdvgen emits the synthetic dataset analogues (Table 5) as CSV so
// they can be inspected, plotted, or fed back through kdvrender -data.
//
// Usage:
//
//	kdvgen -name crime -n 270688 -o crime.csv
//	kdvgen -name hep -n 1000000 -dims 10 -o hep.csv
package main

import (
	"flag"
	"log/slog"
	"os"

	"github.com/quadkdv/quad/internal/dataset"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/logging"
	"github.com/quadkdv/quad/internal/telemetry"
)

func main() {
	var (
		name  = flag.String("name", "", "dataset: elnino|crime|home|hep")
		n     = flag.Int("n", 0, "number of points (0 = paper cardinality)")
		dims  = flag.Int("dims", 0, "dimensions for hep (default 10); others are 2-d")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("o", "", "output CSV path (default <name>.csv)")
		pprof = flag.String("pprof-addr", "", "side listener for net/http/pprof and expvar (empty disables)")
	)
	flag.Parse()
	logger := logging.Setup("kdvgen", nil)
	if *pprof != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterRuntimeMetrics(reg)
		bound, err := telemetry.StartDebug(*pprof, reg)
		if err != nil {
			fatal(err)
		}
		logger.Info("debug listener up", "addr", bound)
	}
	if *name == "" {
		logger.Error("-name required (elnino|crime|home|hep)")
		os.Exit(2)
	}

	var pts geom.Points
	var err error
	if *name == "hep" && *dims > 0 {
		pts = dataset.Hep(sizeOf(*name, *n), *dims, *seed)
	} else {
		pts, err = dataset.Generate(*name, *n, *seed)
		if err != nil {
			fatal(err)
		}
	}

	path := *out
	if path == "" {
		path = *name + ".csv"
	}
	if err := dataset.SaveFile(path, pts); err != nil {
		fatal(err)
	}
	logger.Info("dataset written", "points", pts.Len(), "dims", pts.Dim, "out", path)
}

func sizeOf(name string, n int) int {
	if n > 0 {
		return n
	}
	return dataset.PaperSizes[name]
}

func fatal(err error) {
	slog.Error("fatal", "error", err)
	os.Exit(1)
}
