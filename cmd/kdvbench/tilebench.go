package main

import (
	"context"
	"fmt"
	"os"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/tiles"
)

// tileServing is the -json report section behind the PR9 acceptance claim:
// serving a 512² tile from the persistent store (or the in-memory LRU) must
// beat rebuilding it from the engine by a wide margin, or the tile pyramid
// is caching nothing worth keeping. All three times cover the same four
// zoom-1 tiles, so the ratios compare identical work.
type tileServing struct {
	TileSize int `json:"tile_size"`
	Zoom     int `json:"zoom"`
	Tiles    int `json:"tiles"`
	Rounds   int `json:"rounds"`
	// ColdBuildMS sums the first-ever fetch of each tile (full engine
	// render + PNG encode + store append). Cold happens once per tile by
	// definition, so it has no best-of rounds.
	ColdBuildMS float64 `json:"cold_build_ms"`
	// WarmDiskMS and WarmMemoryMS sum the same fetches served from the
	// disk log and the LRU respectively, best-of-rounds.
	WarmDiskMS   float64 `json:"warm_disk_ms"`
	WarmMemoryMS float64 `json:"warm_memory_ms"`
	// DiskSpeedup = cold/warm-disk, the number -mintilespeedup gates on.
	DiskSpeedup   float64 `json:"disk_speedup"`
	MemorySpeedup float64 `json:"memory_speedup"`
}

// measureTileServing benchmarks the three tile-serving tiers over a real
// on-disk store in a temp directory: cold engine builds, then disk hits
// through freshly opened pyramids (restart shape), then LRU hits.
func measureTileServing(pts geom.Points, workers int, eps float64) (*tileServing, error) {
	const (
		tileSize = 512
		zoom     = 1
		rounds   = 3
	)
	dir, err := os.MkdirTemp("", "kdvbench-tiles-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	k, err := quad.New(pts.Coords, pts.Dim,
		quad.WithKernel(quad.Gaussian),
		quad.WithMethod(quad.MethodQuadratic),
		quad.WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	store := tiles.OpenStore(dir, nil)
	defer store.Close()
	newPyramid := func() (*tiles.Pyramid, error) {
		return tiles.NewPyramid(context.Background(), tiles.PyramidConfig{
			Tileset:  "bench/crime",
			KDV:      k,
			Eps:      eps,
			TileSize: tileSize,
			MaxZoom:  zoom,
			LogScale: true,
			Store:    store,
			LRU:      tiles.NewLRU(256<<20, nil),
		})
	}

	n := 1 << zoom
	coords := make([]tiles.Coord, 0, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			coords = append(coords, tiles.Coord{Z: zoom, X: x, Y: y})
		}
	}
	// fetchAll serves every tile of the zoom and returns the summed wall
	// clock, failing loudly if any tile came from the wrong tier — a bench
	// that silently measures the wrong path is worse than no bench.
	fetchAll := func(p *tiles.Pyramid, want string) (float64, error) {
		var total time.Duration
		for _, c := range coords {
			start := time.Now()
			_, source, err := p.Tile(context.Background(), c)
			if err != nil {
				return 0, fmt.Errorf("tile %s: %w", c, err)
			}
			total += time.Since(start)
			if source != want {
				return 0, fmt.Errorf("tile %s served from %q, expected %q", c, source, want)
			}
		}
		return float64(total.Microseconds()) / 1e3, nil
	}

	out := &tileServing{TileSize: tileSize, Zoom: zoom, Tiles: len(coords), Rounds: rounds}
	cold, err := newPyramid()
	if err != nil {
		return nil, err
	}
	if out.ColdBuildMS, err = fetchAll(cold, "build"); err != nil {
		return nil, err
	}

	// Warm-disk rounds each reopen the pyramid over the same store with an
	// empty LRU — the restart shape the smoke test drives end to end.
	var warm *tiles.Pyramid
	for r := 0; r < rounds; r++ {
		if warm, err = newPyramid(); err != nil {
			return nil, err
		}
		ms, err := fetchAll(warm, "disk")
		if err != nil {
			return nil, err
		}
		if r == 0 || ms < out.WarmDiskMS {
			out.WarmDiskMS = ms
		}
	}
	// The last warm pyramid's LRU now holds every tile: memory rounds.
	for r := 0; r < rounds; r++ {
		ms, err := fetchAll(warm, "memory")
		if err != nil {
			return nil, err
		}
		if r == 0 || ms < out.WarmMemoryMS {
			out.WarmMemoryMS = ms
		}
	}
	if out.WarmDiskMS > 0 {
		out.DiskSpeedup = out.ColdBuildMS / out.WarmDiskMS
	}
	if out.WarmMemoryMS > 0 {
		out.MemorySpeedup = out.ColdBuildMS / out.WarmMemoryMS
	}
	return out, nil
}
