// Command kdvbench regenerates the paper's evaluation artifacts (Section 7):
// every figure's data series is printed as an aligned table, and the figure
// experiments that are images (Figures 2 and 21) are written as PNGs.
//
// Usage:
//
//	kdvbench -exp fig14              # one experiment (see -list)
//	kdvbench -exp all                # the whole evaluation
//	kdvbench -exp fig2 -out results  # experiments that emit PNGs
//	kdvbench -full                   # paper-scale datasets/resolutions
//	kdvbench -json bench.json        # machine-readable render benchmark
//	kdvbench -compare old.json bench.json  # regression gate (exit 1 on fail)
//
// The default configuration is scaled for a single-core machine; cells that
// exceed -timeout are measured on a pixel prefix and extrapolated (printed
// with a '~' prefix), mirroring the paper's 2-hour timeout convention.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/harness"
	"github.com/quadkdv/quad/internal/logging"
	"github.com/quadkdv/quad/internal/telemetry"
)

func main() {
	var (
		exp            = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list           = flag.Bool("list", false, "list available experiments")
		full           = flag.Bool("full", false, "paper-scale configuration (slow)")
		outDir         = flag.String("out", "", "directory for PNG artifacts")
		seed           = flag.Int64("seed", 20200614, "dataset generator seed")
		timeout        = flag.Duration("timeout", 0, "per-cell timeout (0 = config default)")
		res            = flag.String("res", "", "override grid resolution, e.g. 320x240")
		sizes          = flag.String("sizes", "", "override dataset sizes, e.g. crime=100000,hep=500000")
		jsonPath       = flag.String("json", "", "measure tile-shared vs per-pixel rendering and write a JSON report to this path")
		jsonN          = flag.Int("jsonn", 100000, "dataset cardinality for the -json benchmark")
		compare        = flag.String("compare", "", "regression gate: diff this baseline -json report against the report named by the positional argument; exits 1 on regression")
		minSpeedup     = flag.Float64("minspeedup", 0, "with -compare: require old/new elapsed_ms on the eps/512x512/tile cell to be at least this factor (0 disables)")
		minTileSpeedup = flag.Float64("mintilespeedup", 0, "with -compare: require the new report's warm-disk tile serving to beat its cold build by this factor (0 disables)")
		pprof          = flag.String("pprof-addr", "", "side listener for net/http/pprof and expvar (empty disables)")
	)
	flag.Parse()
	logger := logging.Setup("kdvbench", nil)

	if *compare != "" {
		if flag.NArg() != 1 {
			logger.Error("-compare old.json new.json (exactly one positional argument)")
			os.Exit(2)
		}
		if err := runCompare(*compare, flag.Arg(0), *minSpeedup, *minTileSpeedup); err != nil {
			fatal(err)
		}
		return
	}

	if *pprof != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterRuntimeMetrics(reg)
		bound, err := telemetry.StartDebug(*pprof, reg)
		if err != nil {
			fatal(err)
		}
		logger.Info("debug listener up", "addr", bound)
	}

	if *jsonPath != "" {
		if err := runJSONBench(*jsonPath, *seed, *jsonN); err != nil {
			fatal(err)
		}
		return
	}
	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		logger.Error("-exp required (use -list to enumerate, or 'all')")
		os.Exit(2)
	}

	cfg := harness.DefaultConfig(os.Stdout)
	if *full {
		cfg = harness.FullConfig(os.Stdout)
	}
	cfg.Out = os.Stdout
	cfg.Seed = *seed
	cfg.OutDir = *outDir
	if *timeout > 0 {
		cfg.CellTimeout = *timeout
	}
	if *res != "" {
		r, err := parseRes(*res)
		if err != nil {
			fatal(err)
		}
		cfg.Res = r
	}
	if *sizes != "" {
		if cfg.Sizes == nil {
			cfg.Sizes = map[string]int{}
		}
		if err := parseSizes(*sizes, cfg.Sizes); err != nil {
			fatal(err)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	if *exp == "all" {
		for _, e := range harness.Experiments() {
			fmt.Printf("\n### %s — %s\n", e.ID, e.Title)
			if err := e.Run(&cfg); err != nil {
				fatal(fmt.Errorf("%s: %w", e.ID, err))
			}
		}
	} else {
		e, ok := harness.Find(*exp)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (use -list)", *exp))
		}
		if err := e.Run(&cfg); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("\nkdvbench: done in %s\n", time.Since(start).Round(time.Millisecond))
}

func parseRes(s string) (grid.Resolution, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 2 {
		return grid.Resolution{}, fmt.Errorf("bad resolution %q (want WxH)", s)
	}
	w, err := strconv.Atoi(parts[0])
	if err != nil {
		return grid.Resolution{}, err
	}
	h, err := strconv.Atoi(parts[1])
	if err != nil {
		return grid.Resolution{}, err
	}
	return grid.Resolution{W: w, H: h}, nil
}

func parseSizes(s string, into map[string]int) error {
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad size spec %q (want name=count)", kv)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return err
		}
		into[parts[0]] = n
	}
	return nil
}

func fatal(err error) {
	slog.Error("fatal", "error", err)
	os.Exit(1)
}
