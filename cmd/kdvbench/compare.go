package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Thresholds of the bench-regression gate. Timing cells are noisy on
// shared CI machines, so ns/pixel gets a wide tolerance; per-pixel node
// evaluations are deterministic for a fixed seed, so their budget is
// tight — a traversal regression shows up there long before it is
// distinguishable from timer noise. The overhead numbers are the PR4/PR5
// acceptance criteria and are gated absolutely, not against the old file.
const (
	nsPerPixelTolerancePct    = 25.0
	nodesPerPixelTolerancePct = 5.0
	overheadBudgetPct         = 2.0
)

// speedupGateCell is the cell -minspeedup reads: the εKDV tile-shared
// render at the largest benchmarked resolution — the headline
// configuration the flat-engine work targets. The gate is the inverse of
// the regression checks: instead of bounding how much slower the new
// report may be, it requires old/new elapsed_ms to clear a floor, so an
// improvement that a PR claims (and documents) stays machine-checked.
var speedupGateCell = cellKey{Variant: "eps", Res: "512x512", Mode: "tile"}

// cellKey identifies a measured configuration across two reports.
type cellKey struct {
	Variant, Res, Mode string
}

func (k cellKey) String() string { return k.Variant + "/" + k.Res + "/" + k.Mode }

// loadReport reads a kdvbench -json artifact.
func loadReport(path string) (*jsonReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep jsonReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// compareReports diffs two -json reports cell by cell and checks the new
// report's overhead numbers against their absolute budgets. A positive
// minSpeedup additionally requires the new report to beat the old one by
// that factor on speedupGateCell; a positive minTileSpeedup requires the
// new report's warm-disk tile serving to beat its own cold build by that
// factor (a within-report gate — the baseline predates the tile store).
// It prints a verdict line per check to out and returns the number of
// regressions.
func compareReports(out io.Writer, oldRep, newRep *jsonReport, minSpeedup, minTileSpeedup float64) int {
	index := func(rep *jsonReport) map[cellKey]jsonCell {
		m := make(map[cellKey]jsonCell, len(rep.Cells))
		for _, c := range rep.Cells {
			m[cellKey{c.Variant, c.Res, c.Mode}] = c
		}
		return m
	}
	oldCells, newCells := index(oldRep), index(newRep)

	regressions := 0
	fail := func(format string, args ...any) {
		regressions++
		fmt.Fprintf(out, "FAIL "+format+"\n", args...)
	}
	// Cells measured under different configurations differ for reasons that
	// have nothing to do with the code; refuse the comparison outright
	// rather than report fabricated regressions.
	for _, c := range []struct {
		field    string
		old, new any
	}{
		{"dataset", oldRep.Dataset, newRep.Dataset},
		{"n", oldRep.N, newRep.N},
		{"kernel", oldRep.Kernel, newRep.Kernel},
		{"method", oldRep.Method, newRep.Method},
		{"eps", oldRep.Eps, newRep.Eps},
		{"tau_sigma", oldRep.TauSigma, newRep.TauSigma},
		{"tile_size", oldRep.TileSize, newRep.TileSize},
	} {
		if c.old != c.new {
			fail("config %-10s %v → %v (reports are not comparable)", c.field, c.old, c.new)
		}
	}
	if regressions > 0 {
		return regressions
	}

	keys := make([]cellKey, 0, len(oldCells))
	for k := range oldCells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })

	check := func(key cellKey, metric string, oldV, newV, tolerancePct float64) {
		if oldV <= 0 {
			fmt.Fprintf(out, "skip %-22s %-14s old value %.3g not comparable\n", key, metric, oldV)
			return
		}
		deltaPct := (newV - oldV) / oldV * 100
		if deltaPct > tolerancePct {
			fail("%-22s %-14s %10.2f → %-10.2f %+.1f%% (budget +%.0f%%)",
				key, metric, oldV, newV, deltaPct, tolerancePct)
			return
		}
		fmt.Fprintf(out, "ok   %-22s %-14s %10.2f → %-10.2f %+.1f%%\n",
			key, metric, oldV, newV, deltaPct)
	}

	for _, k := range keys {
		oc := oldCells[k]
		nc, ok := newCells[k]
		if !ok {
			fail("%-22s missing from the new report (coverage lost)", k)
			continue
		}
		check(k, "ns_per_pixel", oc.NsPerPixel, nc.NsPerPixel, nsPerPixelTolerancePct)
		check(k, "nodes_per_pixel", oc.NodesPerPixel, nc.NodesPerPixel, nodesPerPixelTolerancePct)
	}
	for k := range newCells {
		if _, ok := oldCells[k]; !ok {
			fmt.Fprintf(out, "new  %-22s (no baseline; not compared)\n", k)
		}
	}

	if minSpeedup > 0 {
		oc, okOld := oldCells[speedupGateCell]
		nc, okNew := newCells[speedupGateCell]
		switch {
		case !okOld || !okNew:
			fail("speedup gate: cell %s missing (in old report: %v, in new: %v)",
				speedupGateCell, okOld, okNew)
		case oc.ElapsedMS <= 0 || nc.ElapsedMS <= 0:
			fail("speedup gate: cell %s has non-positive elapsed_ms (%.3g → %.3g)",
				speedupGateCell, oc.ElapsedMS, nc.ElapsedMS)
		default:
			speedup := oc.ElapsedMS / nc.ElapsedMS
			if speedup < minSpeedup {
				fail("speedup gate %-15s %10.1fms → %-10.1fms %.2fx, below the %.2fx floor",
					speedupGateCell, oc.ElapsedMS, nc.ElapsedMS, speedup, minSpeedup)
			} else {
				fmt.Fprintf(out, "ok   speedup gate %-15s %10.1fms → %-10.1fms %.2fx (floor %.2fx)\n",
					speedupGateCell, oc.ElapsedMS, nc.ElapsedMS, speedup, minSpeedup)
			}
		}
	}

	if minTileSpeedup > 0 {
		ts := newRep.TileServing
		switch {
		case ts == nil:
			fail("tile speedup gate: new report has no tile_serving section")
		case ts.ColdBuildMS <= 0 || ts.WarmDiskMS <= 0:
			fail("tile speedup gate: non-positive timings (cold %.3g ms, disk %.3g ms)",
				ts.ColdBuildMS, ts.WarmDiskMS)
		default:
			speedup := ts.ColdBuildMS / ts.WarmDiskMS
			if speedup < minTileSpeedup {
				fail("tile speedup gate   cold %10.1fms vs disk %-10.1fms %.1fx, below the %.1fx floor",
					ts.ColdBuildMS, ts.WarmDiskMS, speedup, minTileSpeedup)
			} else {
				fmt.Fprintf(out, "ok   tile speedup gate   cold %10.1fms vs disk %-10.1fms %.1fx (floor %.1fx)\n",
					ts.ColdBuildMS, ts.WarmDiskMS, speedup, minTileSpeedup)
			}
		}
	}

	if o := newRep.TelemetryOverhead; o != nil {
		if o.DeltaPct > overheadBudgetPct {
			fail("telemetry overhead %+.2f%% exceeds the %.0f%% budget", o.DeltaPct, overheadBudgetPct)
		} else {
			fmt.Fprintf(out, "ok   telemetry overhead %+.2f%% (budget %.0f%%)\n", o.DeltaPct, overheadBudgetPct)
		}
	}
	if o := newRep.TracingOverhead; o != nil {
		if o.OffDeltaPct > overheadBudgetPct {
			fail("tracing disabled-path overhead %+.2f%% exceeds the %.0f%% budget", o.OffDeltaPct, overheadBudgetPct)
		} else {
			fmt.Fprintf(out, "ok   tracing disabled-path overhead %+.2f%% (budget %.0f%%)\n", o.OffDeltaPct, overheadBudgetPct)
		}
	}
	if o := newRep.AuditOverhead; o != nil {
		if o.DeltaPct > overheadBudgetPct {
			fail("audit overhead at %.0f%% fraction %+.2f%% exceeds the %.0f%% budget",
				o.Fraction*100, o.DeltaPct, overheadBudgetPct)
		} else {
			fmt.Fprintf(out, "ok   audit overhead at %.0f%% fraction %+.2f%% (budget %.0f%%)\n",
				o.Fraction*100, o.DeltaPct, overheadBudgetPct)
		}
	}
	return regressions
}

// runCompare is the bench-regression gate: kdvbench -compare old.json
// new.json. Exit status 1 means at least one regression.
func runCompare(oldPath, newPath string, minSpeedup, minTileSpeedup float64) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	if n := compareReports(os.Stdout, oldRep, newRep, minSpeedup, minTileSpeedup); n > 0 {
		return fmt.Errorf("%d regression(s) against %s", n, oldPath)
	}
	fmt.Printf("no regressions against %s\n", oldPath)
	return nil
}
