package main

import (
	"strings"
	"testing"
)

func baselineReport() *jsonReport {
	return &jsonReport{
		Dataset: "crime",
		Cells: []jsonCell{
			{Variant: "eps", Res: "256x256", Mode: "tile", NsPerPixel: 1000, NodesPerPixel: 8.0},
			{Variant: "eps", Res: "256x256", Mode: "perpixel", NsPerPixel: 4000, NodesPerPixel: 40.0},
			{Variant: "tau", Res: "256x256", Mode: "tile", NsPerPixel: 800, NodesPerPixel: 6.0},
		},
		TelemetryOverhead: &telemetryOverhead{DeltaPct: 0.5},
		TracingOverhead:   &tracingOverhead{OffDeltaPct: 0.5},
	}
}

// TestCompareAcceptsEquivalentRun: identical numbers (plus noise inside the
// tolerances) must pass.
func TestCompareAcceptsEquivalentRun(t *testing.T) {
	oldRep, newRep := baselineReport(), baselineReport()
	newRep.Cells[0].NsPerPixel *= 1.20    // inside the 25% timing tolerance
	newRep.Cells[0].NodesPerPixel *= 1.04 // inside the 5% work tolerance
	var out strings.Builder
	if n := compareReports(&out, oldRep, newRep, 0, 0); n != 0 {
		t.Fatalf("equivalent run flagged %d regression(s):\n%s", n, out.String())
	}
}

// TestComparePlantedRegressions is the gate's self-test: a planted timing
// regression, a planted traversal-work regression, a lost cell, and a
// blown overhead budget must each be caught.
func TestComparePlantedRegressions(t *testing.T) {
	cases := []struct {
		name  string
		plant func(rep *jsonReport)
		want  string
	}{
		{"timing", func(rep *jsonReport) { rep.Cells[0].NsPerPixel *= 1.50 }, "ns_per_pixel"},
		{"work", func(rep *jsonReport) { rep.Cells[1].NodesPerPixel *= 1.10 }, "nodes_per_pixel"},
		{"lost cell", func(rep *jsonReport) { rep.Cells = rep.Cells[:2] }, "missing from the new report"},
		{"telemetry overhead", func(rep *jsonReport) { rep.TelemetryOverhead.DeltaPct = 3.1 }, "telemetry overhead"},
		{"tracing overhead", func(rep *jsonReport) { rep.TracingOverhead.OffDeltaPct = 2.5 }, "tracing disabled-path overhead"},
		{"config mismatch", func(rep *jsonReport) { rep.N = 12345 }, "not comparable"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			newRep := baselineReport()
			tc.plant(newRep)
			var out strings.Builder
			n := compareReports(&out, baselineReport(), newRep, 0, 0)
			if n == 0 {
				t.Fatalf("planted %s regression not caught:\n%s", tc.name, out.String())
			}
			if !strings.Contains(out.String(), tc.want) {
				t.Fatalf("verdicts missing %q:\n%s", tc.want, out.String())
			}
		})
	}
}

// TestCompareEndToEnd exercises the file-loading path runCompare uses,
// including the non-nil error (→ non-zero exit) on a planted regression.
func TestCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	writeReport := func(name string, rep *jsonReport) string {
		t.Helper()
		path := dir + "/" + name
		if err := writeJSON(path, rep); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := writeReport("old.json", baselineReport())
	newRep := baselineReport()
	newRep.Cells[2].NodesPerPixel *= 2 // planted regression
	newPath := writeReport("new.json", newRep)
	if err := runCompare(oldPath, oldPath, 0, 0); err != nil {
		t.Fatalf("self-compare: %v", err)
	}
	if err := runCompare(oldPath, newPath, 0, 0); err == nil {
		t.Fatal("planted regression: runCompare returned nil")
	}
}

// gateReport is a baseline that includes the eps/512x512/tile cell the
// -minspeedup gate reads, with elapsed set by the caller.
func gateReport(elapsedMS float64) *jsonReport {
	rep := baselineReport()
	rep.Cells = append(rep.Cells, jsonCell{
		Variant: "eps", Res: "512x512", Mode: "tile",
		ElapsedMS: elapsedMS, NsPerPixel: elapsedMS * 1e6 / (512 * 512), NodesPerPixel: 50,
	})
	return rep
}

// TestCompareTileSpeedupGate covers the -mintilespeedup assertion, a
// within-new-report gate: warm-disk tile serving must beat the cold build
// by the floor; a missing tile_serving section fails (the claim cannot be
// checked); zero leaves the gate off.
func TestCompareTileSpeedupGate(t *testing.T) {
	withTiles := func(coldMS, diskMS float64) *jsonReport {
		rep := baselineReport()
		rep.TileServing = &tileServing{ColdBuildMS: coldMS, WarmDiskMS: diskMS}
		return rep
	}
	cases := []struct {
		name     string
		newRep   *jsonReport
		floor    float64
		wantFail bool
	}{
		{"floor cleared", withTiles(500, 10), 10, false},
		{"floor missed", withTiles(500, 100), 10, true},
		{"section missing", baselineReport(), 10, true},
		{"zero timings", withTiles(0, 0), 10, true},
		{"gate disabled", baselineReport(), 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			n := compareReports(&out, baselineReport(), tc.newRep, 0, tc.floor)
			if got := n > 0; got != tc.wantFail {
				t.Fatalf("regressions = %d, want failure %v:\n%s", n, tc.wantFail, out.String())
			}
			if tc.wantFail && !strings.Contains(out.String(), "tile speedup gate") {
				t.Fatalf("verdicts missing the tile-speedup-gate line:\n%s", out.String())
			}
		})
	}
}

// TestCompareSpeedupGate covers the -minspeedup assertion: a cleared
// floor passes, a missed floor fails, a missing gate cell fails (the
// claim cannot be checked), and minSpeedup=0 leaves the gate off.
func TestCompareSpeedupGate(t *testing.T) {
	cases := []struct {
		name       string
		oldMS      float64
		newRep     *jsonReport
		minSpeedup float64
		wantFail   bool
	}{
		{"floor cleared", 3300, gateReport(2700), 1.2, false},
		{"floor missed", 3300, gateReport(3000), 1.2, true},
		{"gate cell missing", 3300, baselineReport(), 1.2, true},
		{"gate disabled", 3300, gateReport(3300), 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			n := compareReports(&out, gateReport(tc.oldMS), tc.newRep, tc.minSpeedup, 0)
			if got := n > 0; got != tc.wantFail {
				t.Fatalf("regressions = %d, want failure %v:\n%s", n, tc.wantFail, out.String())
			}
			if tc.wantFail && !strings.Contains(out.String(), "speedup gate") {
				t.Fatalf("verdicts missing the speedup-gate line:\n%s", out.String())
			}
		})
	}
}
