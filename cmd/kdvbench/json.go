package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/audit"
	"github.com/quadkdv/quad/internal/dataset"
	"github.com/quadkdv/quad/internal/geom"
	"github.com/quadkdv/quad/internal/grid"
	"github.com/quadkdv/quad/internal/telemetry"
	"github.com/quadkdv/quad/internal/trace"
)

// jsonCell is one measured render configuration in the -json report.
type jsonCell struct {
	Variant        string  `json:"variant"` // "eps" or "tau"
	Res            string  `json:"res"`
	Mode           string  `json:"mode"` // "tile" or "perpixel"
	ElapsedMS      float64 `json:"elapsed_ms"`
	NsPerPixel     float64 `json:"ns_per_pixel"`
	NodesPerPixel  float64 `json:"nodes_per_pixel"`
	NodesEvaluated int     `json:"nodes_evaluated"`
	SharedEvals    int     `json:"shared_node_evals"`
	LeafScans      int     `json:"leaf_scans"`
	Tiles          int     `json:"tiles"`
	TilesDecided   int     `json:"tiles_decided"`
}

// jsonReport is the BENCH_PR2.json schema: the tile-shared traversal's
// speedup and traversal-work reduction against the per-pixel baseline, for
// both query variants at two resolutions.
type jsonReport struct {
	Dataset  string     `json:"dataset"`
	N        int        `json:"n"`
	Kernel   string     `json:"kernel"`
	Method   string     `json:"method"`
	Eps      float64    `json:"eps"`
	TauSigma float64    `json:"tau_sigma"` // τ = μ + tau_sigma·σ
	Workers  int        `json:"workers"`
	TileSize int        `json:"tile_size"`
	Cells    []jsonCell `json:"cells"`
	// Speedups maps "variant/res" to elapsed(perpixel)/elapsed(tile);
	// NodeReductions maps the same keys to the per-pixel node-evaluation
	// ratio (per-pixel counters only — shared work is reported separately in
	// the cells).
	Speedups       map[string]float64 `json:"speedups"`
	NodeReductions map[string]float64 `json:"node_reductions"`
	// TelemetryOverhead measures stats collection against the no-op path —
	// the PR4 acceptance number (delta must stay ≤ 2%).
	TelemetryOverhead *telemetryOverhead `json:"telemetry_overhead,omitempty"`
	// TracingOverhead measures the span-instrumented render entry points
	// under a disabled trace (plain context, nil *trace.Trace) against a
	// trace-carrying context. The disabled delta is the PR5 acceptance
	// number (must stay ≤ 2%): tracing must cost nothing when off.
	TracingOverhead *tracingOverhead `json:"tracing_overhead,omitempty"`
	// TileServing measures the /tiles serving tiers — cold engine build vs
	// warm-disk vs warm-memory on 512² tiles. The PR9 acceptance number is
	// DiskSpeedup (gated by -mintilespeedup).
	TileServing *tileServing `json:"tile_serving,omitempty"`
	// AuditOverhead measures the shadow-audit producer hook on the serving
	// path — render plus the sampling coin, pixel draw, and job submit — at
	// the production 1% fraction against the auditless render. The PR10
	// acceptance number is DeltaPct (must stay ≤ 2%).
	AuditOverhead *auditOverhead `json:"audit_overhead,omitempty"`
}

// auditOverhead compares the render-and-maybe-submit path (the exact hook
// the serve layer runs after each completed render) against the bare
// render, interleaved best-of-rounds. The forced side submits an audit on
// every round (fraction 1), bounding what a sampled round costs; the gated
// number is the production-fraction delta.
type auditOverhead struct {
	Res      string  `json:"res"`
	Rounds   int     `json:"rounds"`
	Fraction float64 `json:"fraction"`
	OffMS    float64 `json:"render_ms_audit_off"`
	OnMS     float64 `json:"render_ms_audit_on"`
	// DeltaPct is (on − off)/off × 100 at the production fraction — the
	// gated number.
	DeltaPct float64 `json:"delta_pct"`
	// ForcedMS audits every round; ForcedDeltaPct is informational.
	ForcedMS       float64 `json:"render_ms_audit_forced"`
	ForcedDeltaPct float64 `json:"forced_delta_pct"`
}

// auditHook replicates the serve layer's producer hook: flip the sampling
// coin, and when sampled reconstruct the render's grid, draw the audit
// pixels, and submit the job with the exact-oracle binding. Everything the
// request path pays is inside this function; the oracle itself runs on the
// auditor's background pool.
func auditHook(a *audit.Auditor, k *quad.KDV, dm *quad.DensityMap, eps float64) error {
	if !a.ShouldAudit() {
		return nil
	}
	g, err := grid.New(grid.Resolution{W: dm.Res.W, H: dm.Res.H},
		geom.Rect{Min: dm.WindowMin[:], Max: dm.WindowMax[:]})
	if err != nil {
		return err
	}
	idx := a.SamplePixels(len(dm.Values))
	samples := make([]audit.Sample, 0, len(idx))
	q := make([]float64, 2)
	scale := 0.0
	for _, v := range dm.Values {
		if v > scale {
			scale = v
		}
	}
	for _, i := range idx {
		px, py := i%dm.Res.W, i/dm.Res.W
		g.Query(px, py, q)
		samples = append(samples, audit.Sample{
			X: px, Y: py, Q: [2]float64{q[0], q[1]}, Value: dm.Values[i],
		})
	}
	a.Submit(audit.Job{
		Endpoint: "render",
		Dataset:  "crime",
		Method:   quad.MethodQuadratic.String(),
		Kind:     audit.KindEps,
		Eps:      eps,
		Scale:    scale,
		Samples:  samples,
		Exact: func(q []float64) float64 {
			d, err := k.Density(q)
			if err != nil {
				return math.NaN()
			}
			return d
		},
	})
	return nil
}

// measureAuditOverhead interleaves rounds of the three paths — bare render,
// render + production-fraction hook, render + forced hook — and keeps each
// side's best time.
func measureAuditOverhead(k *quad.KDV, res quad.Resolution, eps float64, rounds int) (*auditOverhead, error) {
	const fraction = 0.01
	sampled := audit.New(audit.Config{Fraction: fraction, Seed: 1, Registry: telemetry.NewRegistry()})
	forced := audit.New(audit.Config{Fraction: 1, Seed: 1, Registry: telemetry.NewRegistry()})
	defer sampled.Close()
	defer forced.Close()

	best := func(cur, v float64) float64 {
		if cur == 0 || v < cur {
			return v
		}
		return cur
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	o := &auditOverhead{Res: res.String(), Rounds: rounds, Fraction: fraction}
	render := func(a *audit.Auditor, slot *float64) error {
		start := time.Now()
		dm, err := k.RenderEps(res, eps)
		if err != nil {
			return err
		}
		if a != nil {
			if err := auditHook(a, k, dm, eps); err != nil {
				dm.Release()
				return err
			}
		}
		elapsed := time.Since(start)
		dm.Release()
		*slot = best(*slot, ms(elapsed))
		return nil
	}
	sides := []func() error{
		func() error { return render(nil, &o.OffMS) },
		func() error { return render(sampled, &o.OnMS) },
		func() error { return render(forced, &o.ForcedMS) },
	}
	// Rotate which side goes first each round — see measureTelemetryOverhead
	// for why a fixed order biases the deltas under sustained load.
	for i := 0; i < rounds; i++ {
		for j := range sides {
			if err := sides[(i+j)%len(sides)](); err != nil {
				return nil, err
			}
		}
	}
	o.DeltaPct = (o.OnMS - o.OffMS) / o.OffMS * 100
	o.ForcedDeltaPct = (o.ForcedMS - o.OffMS) / o.OffMS * 100
	return o, nil
}

// telemetryOverhead compares the plain render entry point (nil stats
// recorder compiled into the hot path) with the stats-collecting one on an
// identical render. Best-of-rounds on each side, interleaved, so scheduler
// noise hits both alike.
type telemetryOverhead struct {
	Res       string  `json:"res"`
	Rounds    int     `json:"rounds"`
	NoStatsMS float64 `json:"render_ms_nostats"`
	StatsMS   float64 `json:"render_ms_stats"`
	// DeltaPct is (stats − nostats)/nostats × 100; negative means noise
	// favored the stats side.
	DeltaPct float64 `json:"delta_pct"`
}

// tracingOverhead compares three render paths on an identical render:
// the stats entry point without a context (the PR4 shape), the
// context-aware entry point with a plain context (tracing present but
// disabled — the default serving path), and the same entry point under a
// trace-carrying context (every span recorded). Best-of-rounds on each
// side, interleaved, so scheduler noise hits all three alike.
type tracingOverhead struct {
	Res      string  `json:"res"`
	Rounds   int     `json:"rounds"`
	StatsMS  float64 `json:"render_ms_stats"`
	OffMS    float64 `json:"render_ms_tracing_off"`
	TracedMS float64 `json:"render_ms_traced"`
	// OffDeltaPct is (off − stats)/stats × 100: what the tracing plumbing
	// costs when no trace is attached. This is the gated number.
	OffDeltaPct float64 `json:"off_delta_pct"`
	// TracedDeltaPct is (traced − stats)/stats × 100: the price of a fully
	// recorded trace. Informational, not gated.
	TracedDeltaPct float64 `json:"traced_delta_pct"`
}

// measureTracingOverhead interleaves rounds of the three paths and keeps
// each side's best time.
func measureTracingOverhead(k *quad.KDV, res quad.Resolution, eps float64, rounds int) (*tracingOverhead, error) {
	best := func(cur, v float64) float64 {
		if cur == 0 || v < cur {
			return v
		}
		return cur
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	o := &tracingOverhead{Res: res.String(), Rounds: rounds}
	plain := context.Background()
	sides := []func() error{
		func() error {
			start := time.Now()
			dm, _, err := k.RenderEpsStats(res, eps)
			if err != nil {
				return err
			}
			dm.Release()
			o.StatsMS = best(o.StatsMS, ms(time.Since(start)))
			return nil
		},
		func() error {
			start := time.Now()
			dm, _, err := k.RenderEpsStatsInCtx(plain, res, eps, quad.Window{})
			if err != nil {
				return err
			}
			dm.Release()
			o.OffMS = best(o.OffMS, ms(time.Since(start)))
			return nil
		},
		func() error {
			traced := trace.NewContext(context.Background(), trace.New())
			start := time.Now()
			dm, _, err := k.RenderEpsStatsInCtx(traced, res, eps, quad.Window{})
			if err != nil {
				return err
			}
			dm.Release()
			o.TracedMS = best(o.TracedMS, ms(time.Since(start)))
			return nil
		},
	}
	// Rotate which side goes first each round — see measureTelemetryOverhead
	// for why a fixed order biases the deltas under sustained load.
	for i := 0; i < rounds; i++ {
		for j := range sides {
			if err := sides[(i+j)%len(sides)](); err != nil {
				return nil, err
			}
		}
	}
	o.OffDeltaPct = (o.OffMS - o.StatsMS) / o.StatsMS * 100
	o.TracedDeltaPct = (o.TracedMS - o.StatsMS) / o.StatsMS * 100
	return o, nil
}

// measureTelemetryOverhead interleaves rounds of the two entry points and
// keeps each side's best time.
func measureTelemetryOverhead(k *quad.KDV, res quad.Resolution, eps float64, rounds int) (*telemetryOverhead, error) {
	best := func(cur, v float64) float64 {
		if cur == 0 || v < cur {
			return v
		}
		return cur
	}
	o := &telemetryOverhead{Res: res.String(), Rounds: rounds}
	runNoStats := func() error {
		start := time.Now()
		dm, err := k.RenderEps(res, eps)
		if err != nil {
			return err
		}
		dm.Release()
		o.NoStatsMS = best(o.NoStatsMS, float64(time.Since(start).Microseconds())/1e3)
		return nil
	}
	runStats := func() error {
		start := time.Now()
		dm, _, err := k.RenderEpsStats(res, eps)
		if err != nil {
			return err
		}
		dm.Release()
		o.StatsMS = best(o.StatsMS, float64(time.Since(start).Microseconds())/1e3)
		return nil
	}
	// Alternate which side runs first each round: sustained load ramps the
	// CPU's thermal/frequency state within a round, so a fixed order would
	// systematically favor whichever side runs on the cooler core — an
	// apparent overhead of several percent with no code difference at all.
	for i := 0; i < rounds; i++ {
		first, second := runNoStats, runStats
		if i%2 == 1 {
			first, second = runStats, runNoStats
		}
		if err := first(); err != nil {
			return nil, err
		}
		if err := second(); err != nil {
			return nil, err
		}
	}
	o.DeltaPct = (o.StatsMS - o.NoStatsMS) / o.NoStatsMS * 100
	return o, nil
}

// runJSONBench measures tile-shared vs per-pixel rendering and writes the
// report to path. It is the artifact generator behind `make bench`.
func runJSONBench(path string, seed int64, n int) error {
	const eps = 0.05
	const tauSigma = 1.0
	pts, err := dataset.Generate("crime", n, seed)
	if err != nil {
		return err
	}
	pts = dataset.First2D(pts)

	workers := runtime.GOMAXPROCS(0)
	build := func(tile int) (*quad.KDV, error) {
		return quad.New(pts.Coords, pts.Dim,
			quad.WithKernel(quad.Gaussian),
			quad.WithMethod(quad.MethodQuadratic),
			quad.WithWorkers(workers),
			quad.WithTileSize(tile))
	}
	tiled, err := build(0)
	if err != nil {
		return err
	}
	perPixel, err := build(1)
	if err != nil {
		return err
	}

	rep := jsonReport{
		Dataset:        "crime",
		N:              pts.Len(),
		Kernel:         quad.Gaussian.String(),
		Method:         quad.MethodQuadratic.String(),
		Eps:            eps,
		TauSigma:       tauSigma,
		Workers:        workers,
		TileSize:       16,
		Speedups:       map[string]float64{},
		NodeReductions: map[string]float64{},
	}
	for _, res := range []quad.Resolution{{W: 256, H: 256}, {W: 512, H: 512}} {
		// τ from the map statistics, as the paper's thresholds are defined.
		mu, sigma, err := tiled.ThresholdStats(res, 8, 0.05)
		if err != nil {
			return err
		}
		tau := mu + tauSigma*sigma
		for _, variant := range []string{"eps", "tau"} {
			var cells [2]jsonCell
			for i, mode := range []struct {
				name string
				k    *quad.KDV
			}{{"tile", tiled}, {"perpixel", perPixel}} {
				// Best-of-rounds wall clock, like the overhead measurements:
				// a single render's timing wobbles ±15% with the machine's
				// load and frequency state, and the -minspeedup gate reads
				// these cells. The traversal counters are deterministic for a
				// fixed seed, so any round's stats are THE stats.
				const cellRounds = 3
				var st quad.RenderStats
				var elapsed time.Duration
				for r := 0; r < cellRounds; r++ {
					start := time.Now()
					if variant == "eps" {
						dm, s, err := mode.k.RenderEpsStats(res, eps)
						if err != nil {
							return err
						}
						dm.Release()
						st = s
					} else {
						hm, s, err := mode.k.RenderTauStats(res, tau)
						if err != nil {
							return err
						}
						hm.Release()
						st = s
					}
					if d := time.Since(start); r == 0 || d < elapsed {
						elapsed = d
					}
				}
				px := res.W * res.H
				cells[i] = jsonCell{
					Variant:        variant,
					Res:            res.String(),
					Mode:           mode.name,
					ElapsedMS:      float64(elapsed.Microseconds()) / 1e3,
					NsPerPixel:     float64(elapsed.Nanoseconds()) / float64(px),
					NodesPerPixel:  st.NodesPerPixel(),
					NodesEvaluated: st.NodesEvaluated,
					SharedEvals:    st.SharedNodeEvals,
					LeafScans:      st.LeafScans,
					Tiles:          st.Tiles,
					TilesDecided:   st.TilesDecided,
				}
				fmt.Printf("%-4s %-9s %-9s %10.1f ms  %8.1f ns/px  %7.2f nodes/px\n",
					variant, res, mode.name, cells[i].ElapsedMS, cells[i].NsPerPixel, cells[i].NodesPerPixel)
			}
			key := fmt.Sprintf("%s/%s", variant, res)
			if cells[0].ElapsedMS > 0 {
				rep.Speedups[key] = cells[1].ElapsedMS / cells[0].ElapsedMS
			}
			if cells[0].NodesEvaluated > 0 {
				rep.NodeReductions[key] = float64(cells[1].NodesEvaluated) / float64(cells[0].NodesEvaluated)
			}
			rep.Cells = append(rep.Cells, cells[:]...)
		}
	}
	// 6 rounds for both overhead pairs: the sides differ only in stats
	// aggregation outside the hot loop (the tracing sides run identical
	// machine code outright), so the true deltas are ~0 and best-of needs
	// enough samples for scheduler noise — observed at ±5% per round on
	// the bench hosts — to wash out of a 2%-budget measurement.
	over, err := measureTelemetryOverhead(tiled, quad.Resolution{W: 512, H: 512}, eps, 6)
	if err != nil {
		return err
	}
	rep.TelemetryOverhead = over
	fmt.Printf("telemetry overhead @ %s: nostats %.1f ms, stats %.1f ms (%+.2f%%)\n",
		over.Res, over.NoStatsMS, over.StatsMS, over.DeltaPct)
	tro, err := measureTracingOverhead(tiled, quad.Resolution{W: 512, H: 512}, eps, 6)
	if err != nil {
		return err
	}
	rep.TracingOverhead = tro
	fmt.Printf("tracing overhead @ %s: stats %.1f ms, off %.1f ms (%+.2f%%), traced %.1f ms (%+.2f%%)\n",
		tro.Res, tro.StatsMS, tro.OffMS, tro.OffDeltaPct, tro.TracedMS, tro.TracedDeltaPct)
	ts, err := measureTileServing(pts, workers, eps)
	if err != nil {
		return err
	}
	rep.TileServing = ts
	fmt.Printf("tile serving @ %d×%d²: cold %.1f ms, disk %.1f ms (%.0fx), memory %.1f ms (%.0fx)\n",
		ts.Tiles, ts.TileSize, ts.ColdBuildMS, ts.WarmDiskMS, ts.DiskSpeedup, ts.WarmMemoryMS, ts.MemorySpeedup)
	ao, err := measureAuditOverhead(tiled, quad.Resolution{W: 512, H: 512}, eps, 6)
	if err != nil {
		return err
	}
	rep.AuditOverhead = ao
	fmt.Printf("audit overhead @ %s: off %.1f ms, on@%.0f%% %.1f ms (%+.2f%%), forced %.1f ms (%+.2f%%)\n",
		ao.Res, ao.OffMS, ao.Fraction*100, ao.OnMS, ao.DeltaPct, ao.ForcedMS, ao.ForcedDeltaPct)

	if err := writeJSON(path, &rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// writeJSON writes v pretty-printed with a trailing newline, the artifact
// format of the checked-in BENCH_*.json baselines.
func writeJSON(path string, v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
