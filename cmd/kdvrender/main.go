// Command kdvrender renders a kernel density color map for a CSV dataset
// (or a named synthetic analogue) as a PNG — the library's end-user tool.
//
// Usage:
//
//	kdvrender -data crime.csv -o heat.png -res 640x480 -eps 0.01
//	kdvrender -gen crime -n 100000 -o heat.png                 # synthetic
//	kdvrender -gen home -tau mu+0.1 -o hotspots.png            # τKDV map
//	kdvrender -gen crime -progressive 500ms -o quick.png       # budgeted
//	kdvrender -gen crime -workmap evals -o heat.png            # + work map
//	kdvrender -gen crime -trace render.trace.json -o heat.png  # + Perfetto
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/dataset"
	"github.com/quadkdv/quad/internal/logging"
	"github.com/quadkdv/quad/internal/telemetry"
	"github.com/quadkdv/quad/internal/trace"
)

func main() {
	var (
		dataPath = flag.String("data", "", "CSV dataset (2 numeric columns)")
		gen      = flag.String("gen", "", "generate a synthetic analogue: elnino|crime|home|hep")
		n        = flag.Int("n", 100000, "points to generate with -gen")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("o", "kdv.png", "output PNG path")
		resFlag  = flag.String("res", "640x480", "raster resolution WxH")
		eps      = flag.Float64("eps", 0.01, "εKDV relative error")
		kernName = flag.String("kernel", "gaussian", "kernel: gaussian|triangular|cosine|exponential|epanechnikov|quartic|uniform")
		method   = flag.String("method", "quad", "method: quad|karl|minmax|exact|zorder")
		tauSpec  = flag.String("tau", "", "render a τKDV map instead; 'mu', 'mu+0.2', 'mu-0.1' or a number")
		progress = flag.Duration("progressive", 0, "progressive render with this time budget")
		logScale = flag.Bool("log", true, "logarithmic color scale")
		windowF  = flag.String("window", "", "pan/zoom window minX,minY,maxX,maxY (default: dataset bounds)")
		pprof    = flag.String("pprof-addr", "", "side listener for net/http/pprof and expvar (empty disables)")
		workmapF = flag.String("workmap", "", "also write a per-pixel work-map PNG: depth|evals|gap")
		workmapO = flag.String("workmap-o", "", "work-map output path (default: -o with a .workmap.png suffix)")
		traceOut = flag.String("trace", "", "write the render's spans as a Chrome trace-event JSON file (load in Perfetto or chrome://tracing)")
	)
	flag.Parse()
	logger := logging.Setup("kdvrender", nil)

	if *pprof != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterRuntimeMetrics(reg)
		bound, err := telemetry.StartDebug(*pprof, reg)
		if err != nil {
			fatal(err)
		}
		logger.Info("debug listener up", "addr", bound)
	}
	pts, err := loadPoints(*dataPath, *gen, *n, *seed)
	if err != nil {
		fatal(err)
	}
	kern, err := quad.ParseKernel(*kernName)
	if err != nil {
		fatal(err)
	}
	m, err := quad.ParseMethod(*method)
	if err != nil {
		fatal(err)
	}
	res, err := parseRes(*resFlag)
	if err != nil {
		fatal(err)
	}
	window, err := parseWindow(*windowF)
	if err != nil {
		fatal(err)
	}
	k, err := quad.New(pts.Coords, pts.Dim, quad.WithKernel(kern), quad.WithMethod(m), quad.WithZOrderGuarantee(*eps, 0.2))
	if err != nil {
		fatal(err)
	}
	logger.Info("dataset ready", "points", k.Len(), "kernel", kern.String(), "method", m.String(), "gamma", k.Gamma())

	var layer quad.WorkMapLayer
	if *workmapF != "" {
		layer, err = quad.ParseWorkMapLayer(*workmapF)
		if err != nil {
			fatal(err)
		}
		if *progress > 0 {
			fatal(fmt.Errorf("-workmap needs a full render; drop -progressive"))
		}
		if *workmapO == "" {
			*workmapO = strings.TrimSuffix(*out, ".png") + ".workmap.png"
		}
	}
	ctx := context.Background()
	var tr *trace.Trace
	if *traceOut != "" {
		tr = trace.New()
		ctx = trace.NewContext(ctx, tr)
	}

	start := time.Now()
	switch {
	case *tauSpec != "":
		tau, err := resolveTau(k, res, *tauSpec, *eps)
		if err != nil {
			fatal(err)
		}
		var hm *quad.HotspotMap
		if layer != "" {
			var wm *quad.WorkMap
			hm, wm, _, err = k.RenderTauWorkMapInCtx(ctx, res, tau, window)
			if err == nil {
				err = saveWorkMap(wm, layer, *workmapO)
			}
		} else {
			hm, _, err = k.RenderTauStatsInCtx(ctx, res, tau, window)
		}
		if err != nil {
			fatal(err)
		}
		if err := hm.SavePNG(*out); err != nil {
			fatal(err)
		}
		logger.Info("tau render done", "tau", tau, "hot_fraction", hm.HotFraction(),
			"elapsed", time.Since(start).Round(time.Millisecond).String(), "out", *out)
	case *progress > 0:
		// Streaming form so a trace decomposes the run into per-level spans.
		r, err := k.RenderProgressiveStreamCtx(ctx, res, *eps, *progress, func(quad.Snapshot) bool { return true })
		if err != nil {
			fatal(err)
		}
		if err := r.Map.SavePNG(*out, *logScale); err != nil {
			fatal(err)
		}
		logger.Info("progressive render done", "evaluated", r.Evaluated, "pixels", res.W*res.H,
			"elapsed", r.Elapsed.Round(time.Millisecond).String(), "out", *out)
	default:
		var dm *quad.DensityMap
		if layer != "" {
			var wm *quad.WorkMap
			dm, wm, _, err = k.RenderEpsWorkMapInCtx(ctx, res, *eps, window)
			if err == nil {
				err = saveWorkMap(wm, layer, *workmapO)
			}
		} else {
			dm, _, err = k.RenderEpsStatsInCtx(ctx, res, *eps, window)
		}
		if err != nil {
			fatal(err)
		}
		if err := dm.SavePNG(*out, *logScale); err != nil {
			fatal(err)
		}
		logger.Info("eps render done", "eps", *eps,
			"elapsed", time.Since(start).Round(time.Millisecond).String(), "out", *out)
	}
	if tr != nil {
		if err := saveTrace(tr, *traceOut); err != nil {
			fatal(err)
		}
		logger.Info("trace written (open in Perfetto or chrome://tracing)",
			"spans", len(tr.Spans()), "out", *traceOut)
	}
}

// saveWorkMap writes one work-map layer as a PNG and reports the totals so
// the diagnostic is self-describing on stderr.
func saveWorkMap(wm *quad.WorkMap, layer quad.WorkMapLayer, path string) error {
	if err := wm.SavePNG(path, layer); err != nil {
		return err
	}
	depth, evals, gap := wm.Totals()
	slog.Info("work map written", "layer", string(layer), "pops", depth, "evals", evals, "gap_sum", gap, "out", path)
	return nil
}

// saveTrace writes the trace in Chrome trace-event format.
func saveTrace(tr *trace.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, tr.Spans()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadPoints(dataPath, gen string, n int, seed int64) (struct {
	Coords []float64
	Dim    int
}, error) {
	var out struct {
		Coords []float64
		Dim    int
	}
	switch {
	case dataPath != "":
		pts, err := dataset.LoadFile(dataPath)
		if err != nil {
			return out, err
		}
		pts = dataset.First2D(pts)
		out.Coords, out.Dim = pts.Coords, pts.Dim
	case gen != "":
		pts, err := dataset.Generate(gen, n, seed)
		if err != nil {
			return out, err
		}
		pts = dataset.First2D(pts)
		out.Coords, out.Dim = pts.Coords, pts.Dim
	default:
		return out, fmt.Errorf("one of -data or -gen is required")
	}
	return out, nil
}

func resolveTau(k *quad.KDV, res quad.Resolution, spec string, eps float64) (float64, error) {
	spec = strings.TrimSpace(strings.ToLower(spec))
	if v, err := strconv.ParseFloat(spec, 64); err == nil {
		return v, nil
	}
	if !strings.HasPrefix(spec, "mu") {
		return 0, fmt.Errorf("bad τ spec %q", spec)
	}
	mult := 0.0
	if rest := spec[2:]; rest != "" {
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return 0, fmt.Errorf("bad τ spec %q", spec)
		}
		mult = v
	}
	stride := 1 + res.W*res.H/4096
	mu, sigma, err := k.ThresholdStats(res, stride, eps)
	if err != nil {
		return 0, err
	}
	return mu + mult*sigma, nil
}

func parseWindow(s string) (quad.Window, error) {
	if s == "" {
		return quad.Window{}, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return quad.Window{}, fmt.Errorf("bad window %q (want minX,minY,maxX,maxY)", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return quad.Window{}, fmt.Errorf("bad window %q: %v", s, err)
		}
		vals[i] = v
	}
	return quad.Window{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]}, nil
}

func parseRes(s string) (quad.Resolution, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 2 {
		return quad.Resolution{}, fmt.Errorf("bad resolution %q", s)
	}
	w, err := strconv.Atoi(parts[0])
	if err != nil {
		return quad.Resolution{}, err
	}
	h, err := strconv.Atoi(parts[1])
	if err != nil {
		return quad.Resolution{}, err
	}
	return quad.Resolution{W: w, H: h}, nil
}

func fatal(err error) {
	slog.Error("fatal", "error", err)
	os.Exit(1)
}
