package main

import (
	"os"
	"syscall"
	"testing"
	"time"
)

// TestRunSIGTERMExitsCleanly boots the real server loop and delivers a
// SIGTERM to the process: run() must drain and return exit code 0.
func TestRunSIGTERMExitsCleanly(t *testing.T) {
	os.Args = []string{"kdvserve", "-addr", "127.0.0.1:0", "-n", "1000", "-shutdown-timeout", "5s"}
	done := make(chan int, 1)
	go func() { done <- run() }()
	// Give the loop time to install its signal handler and listener before
	// the signal fires.
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run() exited %d after SIGTERM, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("kdvserve did not exit after SIGTERM")
	}
}
