// Command kdvserve runs an HTTP kernel density visualization server — the
// interactive front-end shape the paper's motivating platforms (ArcGIS,
// QGIS) consume KDV through.
//
//	kdvserve -addr :8080 -n 100000 -request-timeout 10s -max-concurrent 8
//
// Then e.g.:
//
//	curl 'http://localhost:8080/render?dataset=crime&res=640x480&eps=0.01' > heat.png
//	curl 'http://localhost:8080/hotspots?dataset=crime&tau=mu+0.2' > hot.png
//	curl 'http://localhost:8080/progressive?dataset=home&budget=500ms' > quick.png
//
// The server is hardened for production traffic: per-request deadlines,
// client-disconnect cancellation, bounded render concurrency (429 +
// Retry-After under overload), a bounded KDV build cache, graceful
// degradation of /render past its deadline, and graceful shutdown — on
// SIGINT/SIGTERM it stops accepting connections, drains in-flight requests
// for up to -shutdown-timeout, then exits.
//
// Observability: GET /metrics serves Prometheus text format, GET /readyz
// reports readiness once the default dataset is warm, -pprof-addr starts a
// side listener with net/http/pprof, expvar, and the same /metrics, and
// -slow-query logs slow requests as JSON lines (request ID, parameters,
// render work counters) on stderr. With -trace-log every request is traced
// (admission, cache, render stages, encode) and its spans appended as JSON
// lines; without it only requests carrying a W3C traceparent header are
// traced. -enable-workmap exposes GET /debug/workmap, serving the
// per-pixel work rasters (refinement depth, node evals, bound gap) as PNG.
//
// Scale-out: the same binary runs as a shard worker or a fan-out
// coordinator. `kdvserve -worker -addr :8081` serves the internal
// shard-render API; `kdvserve -workers host:8081,host:8082` makes /render a
// coordinator that partitions each render across the workers by Z-order
// data shard and merges the rasters additively, with per-worker circuit
// breakers, jittered retries, and hedged requests against stragglers. When
// workers stay unreachable the merged raster of the live shards is served
// with X-KDV-Complete: false and X-KDV-Shards: k/n.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/quadkdv/quad/internal/cluster"
	"github.com/quadkdv/quad/internal/serve"
	"github.com/quadkdv/quad/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr            = flag.String("addr", ":8080", "listen address")
		n               = flag.Int("n", 100000, "default dataset cardinality")
		requestTimeout  = flag.Duration("request-timeout", 15*time.Second, "per-request render deadline (0 disables)")
		maxConcurrent   = flag.Int("max-concurrent", 0, "max concurrent renders (0 = GOMAXPROCS)")
		maxQueue        = flag.Int("max-queue", 0, "max requests queued for a render slot (0 = 2x max-concurrent)")
		cacheSize       = flag.Int("cache-size", 32, "max cached KDV builds")
		degradeBudget   = flag.Duration("degrade-budget", 250*time.Millisecond, "progressive fallback budget when /render misses its deadline")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "drain window for in-flight requests on SIGINT/SIGTERM")
		pprofAddr       = flag.String("pprof-addr", "", "side listener for net/http/pprof, expvar, and /metrics (e.g. localhost:6060; empty disables)")
		slowQuery       = flag.Duration("slow-query", 0, "log any request at least this slow as a JSON line on stderr (0 disables)")
		traceLog        = flag.String("trace-log", "", "trace every request and append its spans as JSON lines to this file ('-' for stderr; empty traces only requests carrying a traceparent)")
		enableWorkMap   = flag.Bool("enable-workmap", false, "serve GET /debug/workmap (per-pixel work-map PNGs; off by default, renders are full-price)")
		tilesDir        = flag.String("tiles-dir", "", "directory for the persistent XYZ tile store (empty keeps /tiles memory-only)")
		tileSize        = flag.Int("tile-size", 256, "tile edge in pixels for /tiles (power of two in [64, 1024])")
		warmZooms       = flag.String("warm-zooms", "", "comma-separated zoom levels of the default tile pyramid to precompute at boot (e.g. 0,1,2; empty disables)")

		workerMode      = flag.Bool("worker", false, "run as a shard-render worker (internal API only) instead of the public server")
		workers         = flag.String("workers", "", "comma-separated worker addresses (host:port); makes /render a sharded fan-out coordinator")
		shards          = flag.Int("shards", 0, "shard count for the coordinator's Z-order partition (0 = number of workers)")
		shardReplicas   = flag.Int("shard-replicas", 1, "max distinct workers a shard's retries/hedges may route across (1 = strict partition)")
		shardAttempts   = flag.Int("shard-attempts", 3, "max tries per shard, including the first")
		hedgeDelay      = flag.Duration("hedge-delay", 0, "fixed delay before hedging a straggling shard request (0 = adaptive p95 of recent latencies)")
		breakerCooldown = flag.Duration("breaker-cooldown", 5*time.Second, "how long a tripped worker circuit breaker stays open before probing")
	)
	flag.Parse()

	if *workerMode && *workers != "" {
		log.Printf("kdvserve: -worker and -workers are mutually exclusive")
		return 2
	}
	if *workerMode {
		return runWorker(*addr, *shutdownTimeout, *pprofAddr, *traceLog)
	}

	cfg := serve.Config{
		DefaultN:       *n,
		RequestTimeout: *requestTimeout,
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
		CacheSize:      *cacheSize,
		DegradeBudget:  *degradeBudget,
		SlowQuery:      *slowQuery,
		EnableWorkMap:  *enableWorkMap,
		TilesDir:       *tilesDir,
		TileSize:       *tileSize,
	}
	if *warmZooms != "" {
		for _, part := range strings.Split(*warmZooms, ",") {
			z, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || z < 0 {
				log.Printf("kdvserve: bad -warm-zooms entry %q", part)
				return 2
			}
			cfg.WarmZooms = append(cfg.WarmZooms, z)
		}
	}
	switch *traceLog {
	case "":
	case "-":
		cfg.TraceLog = os.Stderr
	default:
		f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Printf("kdvserve: trace log: %v", err)
			return 1
		}
		defer f.Close()
		cfg.TraceLog = f
	}
	if *workers != "" {
		reg := telemetry.NewRegistry()
		coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
			Workers:     strings.Split(*workers, ","),
			Shards:      *shards,
			Replicas:    *shardReplicas,
			MaxAttempts: *shardAttempts,
			HedgeDelay:  *hedgeDelay,
			Breaker:     cluster.BreakerConfig{Cooldown: *breakerCooldown},
		}, reg)
		if err != nil {
			log.Printf("kdvserve: coordinator: %v", err)
			return 1
		}
		cfg.Registry = reg
		cfg.Cluster = coord
		log.Printf("kdvserve: coordinating %d workers, %d shards (replicas=%d, attempts=%d)",
			len(coord.Workers()), coord.Shards(), *shardReplicas, *shardAttempts)
	}
	s := serve.NewServerWith(cfg)
	defer s.Close()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	if *pprofAddr != "" {
		bound, err := telemetry.StartDebug(*pprofAddr, s.Registry())
		if err != nil {
			log.Printf("kdvserve: pprof listener: %v", err)
			return 1
		}
		log.Printf("kdvserve: debug listener on %s (pprof, expvar, metrics)", bound)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Warm the default dataset in the background so /readyz flips green
	// without waiting for the first probe to trigger it.
	go func() {
		if err := s.Warmup(context.Background()); err != nil {
			log.Printf("kdvserve: warmup: %v", err)
		}
	}()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("kdvserve: listening on %s (default n=%d, request timeout %s)", *addr, s.DefaultN, *requestTimeout)

	select {
	case err := <-errc:
		// The listener failed before any shutdown signal.
		log.Printf("kdvserve: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	log.Printf("kdvserve: shutdown signal received, draining for up to %s", *shutdownTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("kdvserve: drain incomplete: %v", err)
		_ = srv.Close()
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("kdvserve: %v", err)
		return 1
	}
	log.Printf("kdvserve: drained, exiting cleanly")
	return 0
}

// runWorker serves the internal shard-render API: the same binary, pointed
// at by a coordinator's -workers list.
func runWorker(addr string, shutdownTimeout time.Duration, pprofAddr, traceLog string) int {
	wcfg := cluster.WorkerConfig{}
	switch traceLog {
	case "":
	case "-":
		wcfg.TraceLog = os.Stderr
	default:
		f, err := os.OpenFile(traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Printf("kdvserve: trace log: %v", err)
			return 1
		}
		defer f.Close()
		wcfg.TraceLog = f
	}
	w := cluster.NewWorker(wcfg)
	srv := &http.Server{
		Addr:              addr,
		Handler:           w.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if pprofAddr != "" {
		bound, err := telemetry.StartDebug(pprofAddr, w.Registry())
		if err != nil {
			log.Printf("kdvserve: pprof listener: %v", err)
			return 1
		}
		log.Printf("kdvserve: debug listener on %s (pprof, expvar, metrics)", bound)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("kdvserve: worker listening on %s (%s)", addr, cluster.ShardRenderPath)

	select {
	case err := <-errc:
		log.Printf("kdvserve: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	log.Printf("kdvserve: worker shutdown signal received, draining for up to %s", shutdownTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("kdvserve: drain incomplete: %v", err)
		_ = srv.Close()
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("kdvserve: %v", err)
		return 1
	}
	log.Printf("kdvserve: worker drained, exiting cleanly")
	return 0
}
