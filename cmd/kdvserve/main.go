// Command kdvserve runs an HTTP kernel density visualization server — the
// interactive front-end shape the paper's motivating platforms (ArcGIS,
// QGIS) consume KDV through.
//
//	kdvserve -addr :8080 -n 100000 -request-timeout 10s -max-concurrent 8
//
// Then e.g.:
//
//	curl 'http://localhost:8080/render?dataset=crime&res=640x480&eps=0.01' > heat.png
//	curl 'http://localhost:8080/hotspots?dataset=crime&tau=mu+0.2' > hot.png
//	curl 'http://localhost:8080/progressive?dataset=home&budget=500ms' > quick.png
//
// The server is hardened for production traffic: per-request deadlines,
// client-disconnect cancellation, bounded render concurrency (429 +
// Retry-After under overload), a bounded KDV build cache, graceful
// degradation of /render past its deadline, and graceful shutdown — on
// SIGINT/SIGTERM it stops accepting connections, drains in-flight requests
// for up to -shutdown-timeout, then exits.
//
// Observability: GET /metrics serves Prometheus text format, GET /readyz
// reports readiness once the default dataset is warm, -pprof-addr starts a
// side listener with net/http/pprof, expvar, and the same /metrics, and
// -slow-query logs slow requests as JSON lines (request ID, parameters,
// render work counters) on stderr. With -trace-log every request is traced
// (admission, cache, render stages, encode) and its spans appended as JSON
// lines; without it only requests carrying a W3C traceparent header are
// traced. -enable-workmap exposes GET /debug/workmap, serving the
// per-pixel work rasters (refinement depth, node evals, bound gap) as PNG.
//
// Accuracy auditing: a shadow auditor samples -audit-fraction of completed
// renders (default 1%) and recomputes -audit-pixels random pixels against
// the exact oracle on a background pool bounded by -audit-budget, checking
// the served values against the advertised ε/τ guarantees — including
// degraded k-of-n cluster merges, audited against the partial-sum oracle.
// Violations log, count in kdv_audit_violations_total, and surface in
// GET /debug/ops, the one-call JSON ops snapshot (build, readiness,
// caches, breakers, audit state, SLO burn rates). All logs are JSON lines
// via log/slog.
//
// Scale-out: the same binary runs as a shard worker or a fan-out
// coordinator. `kdvserve -worker -addr :8081` serves the internal
// shard-render API; `kdvserve -workers host:8081,host:8082` makes /render a
// coordinator that partitions each render across the workers by Z-order
// data shard and merges the rasters additively, with per-worker circuit
// breakers, jittered retries, and hedged requests against stragglers. When
// workers stay unreachable the merged raster of the live shards is served
// with X-KDV-Complete: false and X-KDV-Shards: k/n.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/quadkdv/quad/internal/cluster"
	"github.com/quadkdv/quad/internal/logging"
	"github.com/quadkdv/quad/internal/serve"
	"github.com/quadkdv/quad/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr            = flag.String("addr", ":8080", "listen address")
		n               = flag.Int("n", 100000, "default dataset cardinality")
		requestTimeout  = flag.Duration("request-timeout", 15*time.Second, "per-request render deadline (0 disables)")
		maxConcurrent   = flag.Int("max-concurrent", 0, "max concurrent renders (0 = GOMAXPROCS)")
		maxQueue        = flag.Int("max-queue", 0, "max requests queued for a render slot (0 = 2x max-concurrent)")
		cacheSize       = flag.Int("cache-size", 32, "max cached KDV builds")
		degradeBudget   = flag.Duration("degrade-budget", 250*time.Millisecond, "progressive fallback budget when /render misses its deadline")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "drain window for in-flight requests on SIGINT/SIGTERM")
		pprofAddr       = flag.String("pprof-addr", "", "side listener for net/http/pprof, expvar, and /metrics (e.g. localhost:6060; empty disables)")
		slowQuery       = flag.Duration("slow-query", 0, "log any request at least this slow as a JSON line on stderr (0 disables)")
		traceLog        = flag.String("trace-log", "", "trace every request and append its spans as JSON lines to this file ('-' for stderr; empty traces only requests carrying a traceparent)")
		enableWorkMap   = flag.Bool("enable-workmap", false, "serve GET /debug/workmap (per-pixel work-map PNGs; off by default, renders are full-price)")
		tilesDir        = flag.String("tiles-dir", "", "directory for the persistent XYZ tile store (empty keeps /tiles memory-only)")
		tileSize        = flag.Int("tile-size", 256, "tile edge in pixels for /tiles (power of two in [64, 1024])")
		warmZooms       = flag.String("warm-zooms", "", "comma-separated zoom levels of the default tile pyramid to precompute at boot (e.g. 0,1,2; empty disables)")
		auditFraction   = flag.Float64("audit-fraction", 0, "fraction of completed renders shadow-audited against the exact oracle (0 = default 0.01, negative disables)")
		auditPixels     = flag.Int("audit-pixels", 0, "random pixels recomputed per audited render (0 = default 8)")
		auditBudget     = flag.Int("audit-budget", 0, "audit queue budget; over-budget audits are dropped, never blocking (0 = default 64)")

		workerMode      = flag.Bool("worker", false, "run as a shard-render worker (internal API only) instead of the public server")
		workers         = flag.String("workers", "", "comma-separated worker addresses (host:port); makes /render a sharded fan-out coordinator")
		shards          = flag.Int("shards", 0, "shard count for the coordinator's Z-order partition (0 = number of workers)")
		shardReplicas   = flag.Int("shard-replicas", 1, "max distinct workers a shard's retries/hedges may route across (1 = strict partition)")
		shardAttempts   = flag.Int("shard-attempts", 3, "max tries per shard, including the first")
		hedgeDelay      = flag.Duration("hedge-delay", 0, "fixed delay before hedging a straggling shard request (0 = adaptive p95 of recent latencies)")
		breakerCooldown = flag.Duration("breaker-cooldown", 5*time.Second, "how long a tripped worker circuit breaker stays open before probing")
	)
	flag.Parse()
	logger := logging.Setup("kdvserve", nil)

	if *workerMode && *workers != "" {
		logger.Error("-worker and -workers are mutually exclusive")
		return 2
	}
	if *workerMode {
		return runWorker(logger, *addr, *shutdownTimeout, *pprofAddr, *traceLog)
	}

	cfg := serve.Config{
		DefaultN:       *n,
		RequestTimeout: *requestTimeout,
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
		CacheSize:      *cacheSize,
		DegradeBudget:  *degradeBudget,
		SlowQuery:      *slowQuery,
		EnableWorkMap:  *enableWorkMap,
		TilesDir:       *tilesDir,
		TileSize:       *tileSize,
		AuditFraction:  *auditFraction,
		AuditPixels:    *auditPixels,
		AuditBudget:    *auditBudget,
		Logger:         logger,
	}
	if *warmZooms != "" {
		for _, part := range strings.Split(*warmZooms, ",") {
			z, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || z < 0 {
				logger.Error("bad -warm-zooms entry", "entry", part)
				return 2
			}
			cfg.WarmZooms = append(cfg.WarmZooms, z)
		}
	}
	switch *traceLog {
	case "":
	case "-":
		cfg.TraceLog = os.Stderr
	default:
		f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Error("trace log open failed", "path", *traceLog, "error", err)
			return 1
		}
		defer f.Close()
		cfg.TraceLog = f
	}
	if *workers != "" {
		reg := telemetry.NewRegistry()
		coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
			Workers:     strings.Split(*workers, ","),
			Shards:      *shards,
			Replicas:    *shardReplicas,
			MaxAttempts: *shardAttempts,
			HedgeDelay:  *hedgeDelay,
			Breaker:     cluster.BreakerConfig{Cooldown: *breakerCooldown},
		}, reg)
		if err != nil {
			logger.Error("coordinator construction failed", "error", err)
			return 1
		}
		cfg.Registry = reg
		cfg.Cluster = coord
		logger.Info("coordinating workers",
			"workers", len(coord.Workers()), "shards", coord.Shards(),
			"replicas", *shardReplicas, "attempts", *shardAttempts)
	}
	s := serve.NewServerWith(cfg)
	defer s.Close()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	if *pprofAddr != "" {
		bound, err := telemetry.StartDebug(*pprofAddr, s.Registry())
		if err != nil {
			logger.Error("pprof listener failed", "error", err)
			return 1
		}
		logger.Info("debug listener up", "addr", bound)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Warm the default dataset in the background so /readyz flips green
	// without waiting for the first probe to trigger it.
	go func() {
		if err := s.Warmup(context.Background()); err != nil {
			logger.Error("warmup failed", "error", err)
		}
	}()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "default_n", s.DefaultN,
		"request_timeout", requestTimeout.String(), "audit_fraction", *auditFraction)

	select {
	case err := <-errc:
		// The listener failed before any shutdown signal.
		logger.Error("listener failed", "error", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutdown signal received, draining", "timeout", shutdownTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Error("drain incomplete", "error", err)
		_ = srv.Close()
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("server error", "error", err)
		return 1
	}
	logger.Info("drained, exiting cleanly")
	return 0
}

// runWorker serves the internal shard-render API: the same binary, pointed
// at by a coordinator's -workers list.
func runWorker(logger *slog.Logger, addr string, shutdownTimeout time.Duration, pprofAddr, traceLog string) int {
	wcfg := cluster.WorkerConfig{}
	switch traceLog {
	case "":
	case "-":
		wcfg.TraceLog = os.Stderr
	default:
		f, err := os.OpenFile(traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Error("trace log open failed", "path", traceLog, "error", err)
			return 1
		}
		defer f.Close()
		wcfg.TraceLog = f
	}
	w := cluster.NewWorker(wcfg)
	telemetry.RegisterRuntimeMetrics(w.Registry())
	srv := &http.Server{
		Addr:              addr,
		Handler:           w.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if pprofAddr != "" {
		bound, err := telemetry.StartDebug(pprofAddr, w.Registry())
		if err != nil {
			logger.Error("pprof listener failed", "error", err)
			return 1
		}
		logger.Info("debug listener up", "addr", bound)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("worker listening", "addr", addr, "path", cluster.ShardRenderPath)

	select {
	case err := <-errc:
		logger.Error("listener failed", "error", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	logger.Info("worker shutdown signal received, draining", "timeout", shutdownTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Error("drain incomplete", "error", err)
		_ = srv.Close()
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("server error", "error", err)
		return 1
	}
	logger.Info("worker drained, exiting cleanly")
	return 0
}
