// Command kdvserve runs an HTTP kernel density visualization server — the
// interactive front-end shape the paper's motivating platforms (ArcGIS,
// QGIS) consume KDV through.
//
//	kdvserve -addr :8080 -n 100000
//
// Then e.g.:
//
//	curl 'http://localhost:8080/render?dataset=crime&res=640x480&eps=0.01' > heat.png
//	curl 'http://localhost:8080/hotspots?dataset=crime&tau=mu+0.2' > hot.png
//	curl 'http://localhost:8080/progressive?dataset=home&budget=500ms' > quick.png
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"github.com/quadkdv/quad/internal/serve"
)

func main() {
	var (
		addr = flag.String("addr", ":8080", "listen address")
		n    = flag.Int("n", 100000, "default dataset cardinality")
	)
	flag.Parse()

	s := serve.NewServer()
	if *n > 0 {
		s.DefaultN = *n
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("kdvserve: listening on %s (default n=%d)", *addr, s.DefaultN)
	log.Fatal(srv.ListenAndServe())
}
