// Crime hotspot detection (the paper's Figure 1 / Figure 2c scenario):
// τKDV classifies each map pixel as hot (density ≥ τ) or cold, producing the
// two-color map criminologists use, and reports the hotspot regions.
//
// The threshold is expressed the way the paper's evaluation does, as
// τ = μ + k·σ over the pixel densities.
package main

import (
	"fmt"
	"log"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/dataset"
)

func main() {
	// A synthetic analogue of an urban crime-incident dataset: ~60 hotspots
	// of widely varying intensity over a street-grid background.
	pts := dataset.Crime(120000, 7)
	kdv, err := quad.New(pts.Coords, pts.Dim) // QUAD method, Gaussian kernel
	if err != nil {
		log.Fatal(err)
	}

	res := quad.Resolution{W: 320, H: 240}

	// Pick τ = μ + 0.2σ from a strided density sample.
	mu, sigma, err := kdv.ThresholdStats(res, 8, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	tau := mu + 0.2*sigma
	fmt.Printf("pixel density stats: μ=%.4g σ=%.4g → τ=%.4g\n", mu, sigma, tau)

	start := time.Now()
	hm, err := kdv.RenderTau(res, tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("τKDV map: %.1f%% of the city flagged hot in %s\n",
		hm.HotFraction()*100, time.Since(start).Round(time.Millisecond))

	if err := hm.SavePNG("crime_hotspots.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("two-color hotspot map → crime_hotspots.png")

	// Report the hottest connected rows as patrol-priority bands: for each
	// map row, the fraction of hot pixels.
	best, bestFrac := 0, 0.0
	for y := 0; y < res.H; y++ {
		hot := 0
		for x := 0; x < res.W; x++ {
			if hm.At(x, y) {
				hot++
			}
		}
		if f := float64(hot) / float64(res.W); f > bestFrac {
			best, bestFrac = y, f
		}
	}
	northing := hm.WindowMin[1] + (float64(best)+0.5)/float64(res.H)*(hm.WindowMax[1]-hm.WindowMin[1])
	fmt.Printf("hottest band: northing ≈ %.2f (%.0f%% of that row is hot)\n", northing, bestFrac*100)
}
