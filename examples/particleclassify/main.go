// Particle searching via kernel density classification (the paper's Table 1
// physics row, and its "kernel-based machine learning models" future-work
// direction): events are labeled signal or background by whichever class's
// kernel density estimate is higher at the event's feature vector.
//
// The classifier races the two classes' density BOUNDS instead of computing
// either density precisely, so a decision usually costs a handful of index
// nodes — the same pruning idea as τKDV, applied to classification.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	quad "github.com/quadkdv/quad"
)

func main() {
	rng := rand.New(rand.NewSource(2020))

	// Simulated collider events in a 2-d feature space (e.g. invariant mass
	// vs transverse momentum): a narrow signal resonance over a broad
	// background continuum.
	signal := make([][]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		signal = append(signal, []float64{
			91 + rng.NormFloat64()*1.2, // resonance peak
			18 + rng.NormFloat64()*4,
		})
	}
	background := make([][]float64, 0, 80000)
	for i := 0; i < 80000; i++ {
		background = append(background, []float64{
			60 + rng.Float64()*70, // smooth continuum
			5 + rng.ExpFloat64()*10,
		})
	}

	clf, err := quad.NewClassifier(map[string][][]float64{
		"signal":     signal,
		"background": background,
	}, quad.Gaussian, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Classify a grid of probe events and measure throughput.
	var signalHits, total int
	start := time.Now()
	for m := 70.0; m <= 110; m += 0.5 {
		for pt := 2.0; pt <= 40; pt += 1 {
			label, err := clf.Classify([]float64{m, pt})
			if err != nil {
				log.Fatal(err)
			}
			total++
			if label == "signal" {
				signalHits++
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("classified %d probe events in %s (%.0f events/sec)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("%d probes (%.1f%%) fall in the signal-dominated region\n",
		signalHits, 100*float64(signalHits)/float64(total))

	// Show the decision along the mass axis at fixed pT: the signal window
	// should appear around the resonance.
	fmt.Println("\ndecision along invariant mass at pT=18:")
	prev := ""
	for m := 70.0; m <= 110; m += 0.25 {
		label, err := clf.Classify([]float64{m, 18})
		if err != nil {
			log.Fatal(err)
		}
		if label != prev {
			fmt.Printf("  m=%6.2f → %s\n", m, label)
			prev = label
		}
	}

	// Calibration detail: the actual prior-scaled densities at the peak.
	dens, err := clf.ClassDensities([]float64{91, 18}, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprior-scaled densities at the peak: signal=%.3g background=%.3g\n",
		dens["signal"], dens["background"])
}
