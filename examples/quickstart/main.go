// Quickstart: build a KDV instance over a point cloud, query densities with
// an ε guarantee, and render a heat map PNG — the smallest end-to-end use of
// the library.
package main

import (
	"fmt"
	"log"
	"math/rand"

	quad "github.com/quadkdv/quad"
)

func main() {
	// A toy dataset: three clusters of "events" on a 10×10 map.
	rng := rand.New(rand.NewSource(42))
	centers := [][2]float64{{2, 2}, {7, 3}, {5, 8}}
	points := make([][]float64, 0, 30000)
	for i := 0; i < 30000; i++ {
		c := centers[rng.Intn(len(centers))]
		points = append(points, []float64{
			c[0] + rng.NormFloat64()*0.5,
			c[1] + rng.NormFloat64()*0.5,
		})
	}

	// Defaults: Gaussian kernel, Scott's-rule bandwidth, QUAD bounds.
	kdv, err := quad.NewFromPoints(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d points, γ=%.4g, w=%.3g\n", kdv.Len(), kdv.Gamma(), kdv.Weight())

	// Point queries: Estimate is within ε of the exact density.
	for _, q := range [][]float64{{2, 2}, {5, 8}, {9.5, 9.5}} {
		est, err := kdv.Estimate(q, 0.01)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := kdv.Density(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("density at (%.1f, %.1f): ε-estimate %.6g (exact %.6g)\n", q[0], q[1], est, exact)
	}

	// Full εKDV color map.
	dm, err := kdv.RenderEps(quad.Resolution{W: 320, H: 240}, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	if err := dm.SavePNG("quickstart_heatmap.png", true); err != nil {
		log.Fatal(err)
	}
	mu, sigma := dm.MuSigma()
	fmt.Printf("rendered 320x240 εKDV map (μ=%.4g, σ=%.4g) → quickstart_heatmap.png\n", mu, sigma)
}
