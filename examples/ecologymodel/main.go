// Ecological data modeling (the paper's Table 1 "data modeling" row):
// pollution-sensor readings are visualized with the distance-based kernels
// ecologists use (triangular, cosine — paper Section 5), and the example
// demonstrates that QUAD's O(d)-time quadratic bounds keep every kernel
// interactive while the ε guarantee holds. It finishes with a
// higher-dimensional KDE query (paper Section 7.7) over the full sensor
// feature vectors via PCA.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/dataset"
	"github.com/quadkdv/quad/internal/pca"
)

func main() {
	// Pollution readings: smooth banded field (the El Niño analogue has the
	// right spatial character for environmental measurements).
	pts := dataset.ElNino(60000, 3)

	fmt.Println("kernel        render(240x180,ε=0.01)   max |rel err| on 50 probes")
	res := quad.Resolution{W: 240, H: 180}
	for _, kern := range []quad.Kernel{quad.Gaussian, quad.Triangular, quad.Cosine, quad.Exponential} {
		kdv, err := quad.New(pts.Coords, pts.Dim, quad.WithKernel(kern))
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		dm, err := kdv.RenderEps(res, 0.01)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		// Verify the deterministic guarantee on a probe sample.
		worst := 0.0
		for i := 0; i < 50; i++ {
			px, py := (i*37)%res.W, (i*53)%res.H
			q := []float64{
				dm.WindowMin[0] + (float64(px)+0.5)/float64(res.W)*(dm.WindowMax[0]-dm.WindowMin[0]),
				dm.WindowMin[1] + (float64(py)+0.5)/float64(res.H)*(dm.WindowMax[1]-dm.WindowMin[1]),
			}
			exact, err := kdv.Density(q)
			if err != nil {
				log.Fatal(err)
			}
			if exact < 1e-100 {
				// Deep-tail densities underflow toward denormals, where a
				// relative error is numerically meaningless.
				continue
			}
			if rel := math.Abs(dm.At(px, py)-exact) / exact; rel > worst {
				worst = rel
			}
		}
		name := fmt.Sprintf("ecology_%s.png", kern)
		if err := dm.SavePNG(name, true); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  %-24s  %.2e   → %s\n", kern, elapsed.Round(time.Millisecond), worst, name)
	}

	// High-dimensional KDE: full 10-d sensor vectors reduced by PCA, then
	// density estimates in the reduced space (paper Figure 24's workflow).
	high := dataset.Hep(60000, 10, 3)
	for _, d := range []int{2, 4, 6} {
		proj, err := pca.Reduce(high, d)
		if err != nil {
			log.Fatal(err)
		}
		kdv, err := quad.New(proj.Coords, d)
		if err != nil {
			log.Fatal(err)
		}
		q := proj.At(0)
		start := time.Now()
		const probes = 200
		for i := 0; i < probes; i++ {
			if _, err := kdv.Estimate(q, 0.01); err != nil {
				log.Fatal(err)
			}
		}
		perQuery := time.Since(start) / probes
		fmt.Printf("PCA d=%d: εKDE query in %s (%d points)\n", d, perQuery.Round(time.Microsecond), kdv.Len())
	}
}
