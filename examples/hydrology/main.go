// Interpolating missing precipitation data with kernel regression — the
// hydrology application of the paper's Table 4 citations (Lee & Kang,
// "Interpolation of missing precipitation data using kernel estimations for
// hydrologic modeling"): rain gauges cover a basin sparsely, and readings
// at ungauged locations are estimated by Nadaraya–Watson regression over
// the gauge positions.
//
// Each prediction carries a certified tolerance and is computed through the
// QUAD bound machinery, so interpolating a full raster of missing values
// stays interactive.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	quad "github.com/quadkdv/quad"
)

// trueField is the synthetic ground-truth rainfall surface (mm): an
// orographic gradient plus two convective cells.
func trueField(x, y float64) float64 {
	cell := func(cx, cy, amp, s float64) float64 {
		d2 := (x-cx)*(x-cx) + (y-cy)*(y-cy)
		return amp * math.Exp(-d2/(2*s*s))
	}
	return 20 + 0.6*x + cell(25, 60, 45, 9) + cell(70, 30, 30, 12)
}

func main() {
	rng := rand.New(rand.NewSource(11))

	// 900 rain gauges scattered over a 100×100 km basin, readings with
	// ±1.5 mm instrument noise.
	gauges := make([][]float64, 0, 900)
	readings := make([]float64, 0, 900)
	for i := 0; i < 900; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		gauges = append(gauges, []float64{x, y})
		readings = append(readings, trueField(x, y)+rng.NormFloat64()*1.5)
	}

	reg, err := quad.NewRegressor(gauges, readings, quad.Gaussian, 0.05) // h ≈ 3.2 km: resolve the convective cells
	if err != nil {
		log.Fatal(err)
	}

	// Interpolate a 60×60 raster of "missing" locations and measure error
	// against the ground truth.
	const grid = 60
	start := time.Now()
	var sumAbs, worst float64
	var undefined int
	values := make([]float64, 0, grid*grid)
	for iy := 0; iy < grid; iy++ {
		for ix := 0; ix < grid; ix++ {
			x := (float64(ix) + 0.5) * 100 / grid
			y := (float64(iy) + 0.5) * 100 / grid
			v, ok, err := reg.Predict([]float64{x, y}, 1e-3)
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				undefined++
				continue
			}
			values = append(values, v)
			e := math.Abs(v - trueField(x, y))
			sumAbs += e
			if e > worst {
				worst = e
			}
		}
	}
	elapsed := time.Since(start)
	n := grid*grid - undefined
	fmt.Printf("interpolated %d locations in %s (%.0f predictions/sec)\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	fmt.Printf("mean abs error %.2f mm, worst %.2f mm (instrument noise σ=1.5 mm)\n",
		sumAbs/float64(n), worst)
	if undefined > 0 {
		fmt.Printf("%d locations had no kernel mass (outside gauge coverage)\n", undefined)
	}

	// Spot-check the two convective cells and a dry corner.
	for _, p := range [][2]float64{{25, 60}, {70, 30}, {5, 95}} {
		v, ok, err := reg.Predict([]float64{p[0], p[1]}, 1e-4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rain at (%2.0f, %2.0f): estimated %6.2f mm, true %6.2f mm (defined=%v)\n",
			p[0], p[1], v, trueField(p[0], p[1]), ok)
	}
}
