// Progressive visualization for interactive traffic analysis (the paper's
// Section 6): a transport analyst pans across accident data and wants a
// usable color map within a real-time budget, refined continuously. This
// example renders the same scene under increasing budgets and reports how
// the approximation error of the partial maps collapses — the Figure 20/21
// experiment as an application.
package main

import (
	"fmt"
	"log"
	"time"

	quad "github.com/quadkdv/quad"
	"github.com/quadkdv/quad/internal/dataset"
	"github.com/quadkdv/quad/internal/stats"
)

func main() {
	// Accident hotspots along a road network — the crime generator's
	// grid-plus-cluster structure is exactly a road-accident pattern.
	pts := dataset.Crime(150000, 99)
	kdv, err := quad.New(pts.Coords, pts.Dim)
	if err != nil {
		log.Fatal(err)
	}

	res := quad.Resolution{W: 256, H: 256}

	// Reference: the fully refined map.
	full, err := kdv.RenderProgressive(res, 0.01, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full render: %d pixels in %s\n", full.Evaluated, full.Elapsed.Round(time.Millisecond))

	fmt.Println("\nbudget     pixels evaluated   avg relative error   map file")
	for _, budget := range []time.Duration{
		10 * time.Millisecond,
		50 * time.Millisecond,
		250 * time.Millisecond,
		1250 * time.Millisecond,
	} {
		r, err := kdv.RenderProgressive(res, 0.01, budget, 0)
		if err != nil {
			log.Fatal(err)
		}
		avgErr, err := stats.AvgRelativeError(r.Map.Values, full.Map.Values)
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("traffic_t%s.png", budget)
		if err := r.Map.SavePNG(name, true); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s  %6d / %d       %.4f               %s\n",
			budget, r.Evaluated, res.W*res.H, avgErr, name)
	}
	fmt.Println("\nEvery map is spatially complete from the first milliseconds; the")
	fmt.Println("quad-tree evaluation order refines detail as the budget grows.")
}
