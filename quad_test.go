package quad

import (
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

// testCloud builds a clustered 2-d dataset as [][]float64.
func testCloud(rng *rand.Rand, n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		cx, cy := float64(i%3)*4, float64((i/3)%2)*4
		pts[i] = []float64{cx + rng.NormFloat64()*0.6, cy + rng.NormFloat64()*0.6}
	}
	return pts
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 2); err == nil {
		t.Error("empty buffer accepted")
	}
	if _, err := New([]float64{1, 2, 3}, 2); err == nil {
		t.Error("ragged buffer accepted")
	}
	if _, err := New([]float64{1, 2}, 0); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := NewFromPoints(nil); err == nil {
		t.Error("empty point slice accepted")
	}
	if _, err := NewFromPoints([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("mixed dims accepted")
	}
	if _, err := NewFromPoints([][]float64{{}}); err == nil {
		t.Error("zero-dim point accepted")
	}
}

func TestNewCopiesInput(t *testing.T) {
	coords := []float64{0, 0, 1, 1}
	k, err := New(coords, 2)
	if err != nil {
		t.Fatal(err)
	}
	coords[0] = 999
	v, err := k.Density([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.4 { // both points near origin → density ≈ high
		t.Errorf("mutating caller buffer changed KDV state (density %g)", v)
	}
}

func TestKernelMethodParsing(t *testing.T) {
	for _, k := range []Kernel{Gaussian, Triangular, Cosine, Exponential, Epanechnikov, Quartic, Uniform} {
		got, err := ParseKernel(k.String())
		if err != nil || got != k {
			t.Errorf("kernel round trip %v: %v %v", k, got, err)
		}
	}
	for _, m := range []Method{MethodQuadratic, MethodLinear, MethodMinMax, MethodExact, MethodZOrder} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("method round trip %v: %v %v", m, got, err)
		}
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestLinearMethodRejectsNonGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	_, err := NewFromPoints(testCloud(rng, 100), WithKernel(Triangular), WithMethod(MethodLinear))
	if err == nil {
		t.Error("KARL with triangular kernel accepted (paper Section 5.1 forbids it)")
	}
}

func TestZOrderRequires2D(t *testing.T) {
	pts := [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	if _, err := NewFromPoints(pts, WithMethod(MethodZOrder)); err == nil {
		t.Error("Z-order on 3-d dataset accepted")
	}
}

func TestEstimateAgainstDensityAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	cloud := testCloud(rng, 2000)
	exactKDV, err := NewFromPoints(cloud, WithMethod(MethodExact))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodQuadratic, MethodLinear, MethodMinMax} {
		k, err := NewFromPoints(cloud, WithMethod(m))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			q := []float64{rng.Float64()*12 - 2, rng.Float64()*8 - 2}
			exact, err := exactKDV.Density(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := k.Estimate(q, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			if exact > 0 && math.Abs(got-exact)/exact > 0.01 {
				t.Fatalf("%s: rel err %g", m, math.Abs(got-exact)/exact)
			}
		}
	}
}

func TestEstimateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	k, err := NewFromPoints(testCloud(rng, 100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Estimate([]float64{1}, 0.01); err == nil {
		t.Error("wrong-dim query accepted")
	}
	if _, err := k.Estimate([]float64{1, 2}, -0.5); err == nil {
		t.Error("negative ε accepted")
	}
	if _, err := k.Density([]float64{1, 2, 3}); err == nil {
		t.Error("wrong-dim Density accepted")
	}
	if _, err := k.IsHot([]float64{1}, 0.5); err == nil {
		t.Error("wrong-dim IsHot accepted")
	}
}

func TestIsHotMatchesDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	cloud := testCloud(rng, 1500)
	k, err := NewFromPoints(cloud)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		q := []float64{rng.Float64() * 10, rng.Float64() * 6}
		d, err := k.Density(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, frac := range []float64{0.7, 1.3} {
			tau := d * frac
			if tau <= 0 {
				continue
			}
			hot, err := k.IsHot(q, tau)
			if err != nil {
				t.Fatal(err)
			}
			if hot != (d >= tau) {
				t.Fatalf("IsHot(τ=%g) = %v, density %g", tau, hot, d)
			}
		}
	}
}

func TestScottDefaultsAndOverrides(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	cloud := testCloud(rng, 500)
	k, err := NewFromPoints(cloud)
	if err != nil {
		t.Fatal(err)
	}
	if k.Gamma() <= 0 || k.Weight() != 1.0/500 || k.Bandwidth() <= 0 {
		t.Errorf("Scott defaults: γ=%g w=%g h=%g", k.Gamma(), k.Weight(), k.Bandwidth())
	}
	k2, err := NewFromPoints(cloud, WithBandwidth(2.5, 0.125))
	if err != nil {
		t.Fatal(err)
	}
	if k2.Gamma() != 2.5 || k2.Weight() != 0.125 {
		t.Errorf("overrides ignored: γ=%g w=%g", k2.Gamma(), k2.Weight())
	}
	if k.KernelFunc() != Gaussian || k.EvalMethod() != MethodQuadratic {
		t.Errorf("defaults: %v %v", k.KernelFunc(), k.EvalMethod())
	}
	if k.Dim() != 2 || k.Len() != 500 {
		t.Errorf("Dim/Len: %d %d", k.Dim(), k.Len())
	}
}

func TestRenderEpsMatchesExactRender(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	cloud := testCloud(rng, 1200)
	res := Resolution{W: 24, H: 18}
	exactK, err := NewFromPoints(cloud, WithMethod(MethodExact))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := exactK.RenderEps(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodQuadratic, MethodLinear, MethodMinMax} {
		k, err := NewFromPoints(cloud, WithMethod(m))
		if err != nil {
			t.Fatal(err)
		}
		dm, err := k.RenderEps(res, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if len(dm.Values) != res.W*res.H {
			t.Fatalf("%s: %d values", m, len(dm.Values))
		}
		for i, v := range dm.Values {
			if ref.Values[i] > 0 && math.Abs(v-ref.Values[i])/ref.Values[i] > 0.01 {
				t.Fatalf("%s: pixel %d rel err %g", m, i, math.Abs(v-ref.Values[i])/ref.Values[i])
			}
		}
	}
}

func TestRenderZOrderApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	cloud := testCloud(rng, 5000)
	res := Resolution{W: 16, H: 12}
	exactK, _ := NewFromPoints(cloud, WithMethod(MethodExact))
	ref, err := exactK.RenderEps(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	zk, err := NewFromPoints(cloud, WithMethod(MethodZOrder), WithZOrderGuarantee(0.01, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	dm, err := zk.RenderEps(res, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Probabilistic guarantee — check the average error is small rather
	// than a per-pixel bound.
	var sum float64
	var cnt int
	for i, v := range dm.Values {
		if ref.Values[i] > 1e-6 {
			sum += math.Abs(v-ref.Values[i]) / ref.Values[i]
			cnt++
		}
	}
	if cnt == 0 || sum/float64(cnt) > 0.2 {
		t.Errorf("Z-order average rel err %g over %d pixels", sum/float64(cnt), cnt)
	}
}

func TestRenderTauAgainstDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	cloud := testCloud(rng, 800)
	res := Resolution{W: 20, H: 16}
	k, err := NewFromPoints(cloud)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := k.RenderEps(res, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	mu, sigma := dm.MuSigma()
	if mu <= 0 || sigma <= 0 {
		t.Fatalf("μ=%g σ=%g", mu, sigma)
	}
	hm, err := k.RenderTau(res, mu)
	if err != nil {
		t.Fatal(err)
	}
	frac := hm.HotFraction()
	if frac <= 0 || frac >= 1 {
		t.Errorf("hot fraction %g at τ=μ should be interior", frac)
	}
	// Classification must agree with the ε-render values except within a
	// hair of the threshold.
	for i, v := range dm.Values {
		margin := 0.01 * v
		if v > mu+margin && !hm.Hot[i] {
			t.Fatalf("pixel %d density %g > τ=%g but cold", i, v, mu)
		}
		if v < mu-margin && hm.Hot[i] {
			t.Fatalf("pixel %d density %g < τ=%g but hot", i, v, mu)
		}
	}
}

func TestRenderRequires2D(t *testing.T) {
	pts := [][]float64{{1, 2, 3}, {4, 5, 6}, {0, 1, 2}}
	k, err := NewFromPoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.RenderEps(Resolution{8, 8}, 0.01); err == nil {
		t.Error("render of 3-d dataset accepted")
	}
	// But Estimate must work in 3-d (general KDE, paper Section 7.7).
	if _, err := k.Estimate([]float64{1, 2, 3}, 0.01); err != nil {
		t.Errorf("3-d Estimate failed: %v", err)
	}
}

func TestRenderParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	cloud := testCloud(rng, 1000)
	res := Resolution{W: 20, H: 20}
	serial, err := NewFromPoints(cloud, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewFromPoints(cloud, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	a, err := serial.RenderEps(res, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.RenderEps(res, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Values {
		if a.Values[i] > 0 && math.Abs(a.Values[i]-b.Values[i])/a.Values[i] > 0.002 {
			t.Fatalf("parallel render diverges at pixel %d: %g vs %g", i, a.Values[i], b.Values[i])
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	k, err := NewFromPoints(testCloud(rng, 800))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				q := []float64{r.Float64() * 10, r.Float64() * 6}
				if _, err := k.Estimate(q, 0.05); err != nil {
					t.Errorf("concurrent Estimate: %v", err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestProgressiveRender(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	cloud := testCloud(rng, 1500)
	k, err := NewFromPoints(cloud)
	if err != nil {
		t.Fatal(err)
	}
	res := Resolution{W: 32, H: 24}
	// Full run.
	full, err := k.RenderProgressive(res, 0.01, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Complete || full.Evaluated != res.W*res.H {
		t.Fatalf("full progressive: complete=%v evaluated=%d", full.Complete, full.Evaluated)
	}
	// Partial run must fill every pixel and have bounded error vs full.
	part, err := k.RenderProgressive(res, 0.01, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if part.Complete || part.Evaluated != 50 {
		t.Fatalf("partial progressive: complete=%v evaluated=%d", part.Complete, part.Evaluated)
	}
	var worse int
	for i := range part.Map.Values {
		if part.Map.Values[i] == 0 && full.Map.Values[i] > 0 {
			worse++
		}
	}
	if worse > 0 {
		t.Errorf("%d pixels left unfilled by partial progressive render", worse)
	}
}

func TestThresholdStats(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	k, err := NewFromPoints(testCloud(rng, 600))
	if err != nil {
		t.Fatal(err)
	}
	mu, sigma, err := k.ThresholdStats(Resolution{20, 16}, 4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if mu <= 0 || sigma <= 0 {
		t.Errorf("μ=%g σ=%g", mu, sigma)
	}
}

func TestSavePNGs(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	k, err := NewFromPoints(testCloud(rng, 400))
	if err != nil {
		t.Fatal(err)
	}
	res := Resolution{W: 16, H: 12}
	dm, err := k.RenderEps(res, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := dm.SavePNG(filepath.Join(dir, "heat.png"), true); err != nil {
		t.Fatal(err)
	}
	mu, _ := dm.MuSigma()
	hm, err := k.RenderTau(res, mu)
	if err != nil {
		t.Fatal(err)
	}
	if err := hm.SavePNG(filepath.Join(dir, "tau.png")); err != nil {
		t.Fatal(err)
	}
	if hm.At(0, 0) != hm.Hot[0] {
		t.Error("HotspotMap.At inconsistent")
	}
	if dm.At(1, 1) != dm.Values[1*res.W+1] {
		t.Error("DensityMap.At inconsistent")
	}
}

func TestAllKernelsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	cloud := testCloud(rng, 600)
	for _, kn := range []Kernel{Gaussian, Triangular, Cosine, Exponential, Epanechnikov, Quartic, Uniform} {
		k, err := NewFromPoints(cloud, WithKernel(kn))
		if err != nil {
			t.Fatalf("%v: %v", kn, err)
		}
		q := []float64{4, 4}
		exact, err := k.Density(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.Estimate(q, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if exact > 0 && math.Abs(got-exact)/exact > 0.01 {
			t.Errorf("%v: rel err %g", kn, math.Abs(got-exact)/exact)
		}
	}
}

func TestDensityBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	cloud := testCloud(rng, 500)
	k, err := NewFromPoints(cloud)
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{4, 2}
	lb, ub, err := k.DensityBounds(q)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := k.Density(q)
	if lb > exact || ub < exact {
		t.Errorf("root bounds [%g, %g] do not sandwich %g", lb, ub, exact)
	}
	ke, _ := NewFromPoints(cloud, WithMethod(MethodExact))
	if _, _, err := ke.DensityBounds(q); err == nil {
		t.Error("DensityBounds on exact method accepted")
	}
}

func TestWithLeafSize(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	cloud := testCloud(rng, 500)
	k, err := NewFromPoints(cloud, WithLeafSize(4))
	if err != nil {
		t.Fatal(err)
	}
	q := []float64{4, 4}
	exact, _ := k.Density(q)
	got, _ := k.Estimate(q, 0.01)
	if exact > 0 && math.Abs(got-exact)/exact > 0.01 {
		t.Errorf("leaf-size-4 estimate off: %g vs %g", got, exact)
	}
}

func TestRenderProgressiveStream(t *testing.T) {
	rng := rand.New(rand.NewSource(116))
	k, err := NewFromPoints(testCloud(rng, 800))
	if err != nil {
		t.Fatal(err)
	}
	res := Resolution{W: 16, H: 16}
	var levels []int
	var finals int
	r, err := k.RenderProgressiveStream(res, 0.05, 0, func(s Snapshot) bool {
		levels = append(levels, s.Level)
		if s.Final {
			finals++
		}
		if len(s.Map.Values) != res.W*res.H {
			t.Errorf("snapshot raster has %d values", len(s.Map.Values))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Complete {
		t.Error("stream run incomplete")
	}
	if len(levels) < 3 || finals != 1 {
		t.Errorf("levels %v finals %d", levels, finals)
	}
	// Early termination via the callback.
	stopped, err := k.RenderProgressiveStream(res, 0.05, 0, func(s Snapshot) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if stopped.Complete {
		t.Error("callback-stopped run reported complete")
	}
	if _, err := k.RenderProgressiveStream(res, 0.05, 0, nil); err == nil {
		t.Error("nil callback accepted")
	}
	if _, err := k.RenderProgressiveStream(res, -1, 0, func(Snapshot) bool { return true }); err == nil {
		t.Error("negative eps accepted")
	}
}
